"""Shared-memory columnar snapshots of warmed estimator state.

The sharded replication runner (:mod:`repro.simulation.replication`)
runs one warm-up in the parent process, then fans the measured interval
out to worker processes.  Each shard needs the warm-up's quadruplet
history — potentially ``cells x pairs x N_quad`` sojourn columns — and
pickling those per task would copy them once per shard.  Instead the
parent flattens every per-``(prev, next)`` column into one float64
:class:`multiprocessing.shared_memory.SharedMemory` segment and ships a
tiny :class:`SharedColumnsHandle` (segment name + offsets); workers map
the segment read-only, rebuild their caches via
:meth:`repro.estimation.cache.QuadrupletCache.preload`, and detach.

Ownership is strictly parent-side: :class:`SharedColumnStore` creates
the segment and is the only party that unlinks it — via context
manager, explicit :meth:`~SharedColumnStore.close`, or the ``atexit``
guard if the owner crashes past creation.  Workers only ever attach and
close, and they unregister the attachment from
:mod:`multiprocessing.resource_tracker` so a worker's exit (or crash)
cannot tear the segment down under its siblings.
"""

from __future__ import annotations

import atexit
import glob
import uuid
from array import array
from multiprocessing import resource_tracker, shared_memory

from repro._kernel import numpy_or_none

#: Prefix of every segment this module creates; the leak-probe tests
#: (and operators) can enumerate live segments by it.
_SEGMENT_PREFIX = "repro-cols-"


def active_segment_names() -> list[str]:
    """Names of this module's shared-memory segments currently live.

    Linux-specific (reads ``/dev/shm``), which is fine for the tests
    that assert no segment outlives its owning store.
    """
    return sorted(
        name[len("/dev/shm/"):]
        for name in glob.glob(f"/dev/shm/{_SEGMENT_PREFIX}*")
    )


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker tracking.

    Python 3.11's ``SharedMemory`` registers the segment with the
    resource tracker even on plain attaches, which makes the tracker
    treat every attaching worker as an owner — a worker exiting (or a
    later ``unregister``) can then destroy or double-free the segment
    under its siblings.  Ownership here is strictly the parent
    :class:`SharedColumnStore`'s, so the attach suppresses the
    registration.  (Python 3.13 grew ``track=False`` for exactly this;
    the shim keeps 3.11 compatible.)
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class SharedColumnsHandle:
    """Picklable reference to a parent-owned shared column segment.

    Carries the segment name, total float count, and an index of
    ``(cell_id, prev, next, offset, count)`` rows: floats
    ``[offset, offset + count)`` are the pair's event times and
    ``[offset + count, offset + 2 * count)`` its sojourns, both in
    record order with times already shifted so the youngest entry is at
    or below 0 (see ``QuadrupletCache.export_columns``).
    """

    __slots__ = ("name", "total", "index")

    def __init__(
        self,
        name: str,
        total: int,
        index: tuple[tuple[int, int | None, int, int, int], ...],
    ) -> None:
        self.name = name
        self.total = total
        self.index = index

    def __reduce__(self):
        return (SharedColumnsHandle, (self.name, self.total, self.index))

    def hydrate(self, network, cells=None) -> None:
        """Preload a fresh network's estimators from the shared segment.

        Attaches read-only, copies the columns out into each station's
        cache, and detaches before returning — the worker holds no
        shared-memory references afterwards, so the parent can unlink
        the segment the moment every shard has started.

        ``cells`` optionally restricts hydration to a subset of cell
        ids (a spatial shard only warms the cells it owns).
        """
        if not self.index:
            return
        shm = _attach_untracked(self.name)
        try:
            np = numpy_or_none()
            if np is not None:
                buffer = np.ndarray(
                    (self.total,), dtype=np.float64, buffer=shm.buf
                )
            else:
                buffer = memoryview(shm.buf).cast("d")
            per_cell: dict[int, dict] = {}
            times = sojourns = None
            for cell_id, prev, next_cell, offset, count in self.index:
                if cells is not None and cell_id not in cells:
                    continue
                times = buffer[offset:offset + count]
                sojourns = buffer[offset + count:offset + 2 * count]
                per_cell.setdefault(cell_id, {})[(prev, next_cell)] = (
                    [float(value) for value in times],
                    [float(value) for value in sojourns],
                )
            # Release every view into the mapping before closing it —
            # a live exported buffer makes SharedMemory.close() raise.
            del times, sojourns, buffer
            for cell_id, pairs in per_cell.items():
                estimator = network.station(cell_id).estimator
                preload = getattr(estimator, "preload", None)
                if preload is not None:
                    preload(pairs)
        finally:
            shm.close()


class SharedColumnStore:
    """Parent-side owner of one shared columnar snapshot segment.

    Use as a context manager (or call :meth:`close`); an ``atexit``
    guard unlinks the segment even if the owning process dies without
    unwinding, so crashed sweeps cannot leak ``/dev/shm`` entries.
    """

    def __init__(
        self,
        exports: dict[
            int, dict[tuple[int | None, int], tuple[list[float], list[float]]]
        ],
    ) -> None:
        index: list[tuple[int, int | None, int, int, int]] = []
        flat: list[float] = []
        for cell_id in sorted(exports):
            for (prev, next_cell), (times, sojourns) in sorted(
                exports[cell_id].items(),
                key=lambda item: (item[0][0] is not None, item[0]),
            ):
                count = len(times)
                if count == 0:
                    continue
                index.append(
                    (cell_id, prev, next_cell, len(flat), count)
                )
                flat.extend(times)
                flat.extend(sojourns)
        self._index = tuple(index)
        self._total = len(flat)
        name = f"{_SEGMENT_PREFIX}{uuid.uuid4().hex[:12]}"
        self._shm: shared_memory.SharedMemory | None = (
            shared_memory.SharedMemory(
                create=True, name=name, size=max(self._total * 8, 8)
            )
        )
        if flat:
            packed = array("d", flat).tobytes()
            self._shm.buf[: len(packed)] = packed
        atexit.register(self._cleanup)

    @classmethod
    def from_network(cls, network, origin: float) -> "SharedColumnStore":
        """Snapshot every station's quadruplet history at time ``origin``.

        ``origin`` (the warm-up's end time) becomes the shards' t=0:
        exported event times are shifted so the cache's time-order
        invariant holds when shards record fresh quadruplets.
        """
        exports = {}
        for station in network.stations:
            cache = getattr(station.estimator, "cache", None)
            export = getattr(cache, "export_columns", None)
            if export is None:
                continue
            columns = export(origin)
            if columns:
                exports[station.cell_id] = columns
        return cls(exports)

    def handle(self) -> SharedColumnsHandle:
        """The picklable worker-side reference to this segment."""
        if self._shm is None:
            raise ValueError("store is closed")
        return SharedColumnsHandle(self._shm.name, self._total, self._index)

    @property
    def name(self) -> str | None:
        """Segment name while open, ``None`` after close."""
        return self._shm.name if self._shm is not None else None

    @property
    def nbytes(self) -> int:
        """Payload size in bytes (8 per stored float)."""
        return self._total * 8

    def close(self) -> None:
        """Unlink the segment.  Idempotent."""
        atexit.unregister(self._cleanup)
        self._cleanup()

    def _cleanup(self) -> None:
        shm, self._shm = self._shm, None
        if shm is None:
            return
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "SharedColumnStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
