"""Sharded replication runner: one long run as K independent shards.

A single long simulation of the paper's scenarios is embarrassingly
serial — the DES hot loop is one thread.  But the *statistic* a long
run produces (post-warm-up P_CB / P_HD) can equally be estimated from
``K`` shorter independent replications, which parallelise perfectly:

* each shard gets its own child RNG via
  :meth:`repro.des.random.RandomStreams.spawn` — deterministic in the
  parent seed and the shard index, so the merged result is bit-identical
  regardless of worker count or scheduling;
* each shard runs its own warm-up cut (shards are statistically
  independent runs, not slices of one sample path);
* optionally every shard starts from a *shared* warmed estimator state:
  the parent runs one warm-up, exports the quadruplet history into a
  :class:`repro.simulation.shared_state.SharedColumnStore`, and each
  worker hydrates from shared memory instead of re-learning from cold;
* the merged P_CB / P_HD pool the raw counts (Wilson intervals) and the
  per-replication proportions feed a batch-means Student-t interval, so
  the headline numbers come with CI half-widths instead of bare points.
"""

from __future__ import annotations

import time as wall_clock
from dataclasses import dataclass, field, replace

from repro.analysis.stats import (
    BatchMeansEstimate,
    ProportionEstimate,
    batch_means,
    wilson_interval,
)
from repro.des.random import RandomStreams
from repro.obs.telemetry import merge_snapshots
from repro.obs.timeseries import merge_series
from repro.obs.trace import merge_traces
from repro.simulation.config import SimulationConfig
from repro.simulation.metrics import SimulationResult
from repro.simulation.runner import SimulationPool, run_sweep
from repro.simulation.shared_state import SharedColumnStore
from repro.simulation.simulator import CellularSimulator


def replication_seeds(config: SimulationConfig, replications: int) -> list[int]:
    """The shard seeds: children of the config's seed, by shard index."""
    parent = RandomStreams(config.seed)
    return [parent.spawn(index).seed for index in range(replications)]


def replication_configs(
    config: SimulationConfig, replications: int
) -> list[SimulationConfig]:
    """Split one long config into ``K`` independent shard configs.

    The measured interval ``duration - warmup`` is divided evenly; each
    shard keeps the full warm-up cut (independence requires every shard
    to warm up — the cut is not free, which is why sharding buys wall
    clock, not CPU seconds).
    """
    if replications < 1:
        raise ValueError(f"need at least one replication, got {replications}")
    measured = config.duration - config.warmup
    shard_measured = measured / replications
    seeds = replication_seeds(config, replications)
    base_label = config.label or config.scheme
    return [
        replace(
            config,
            seed=seed,
            duration=config.warmup + shard_measured,
            run_id="",
            label=f"{base_label}[rep{index}]",
        )
        for index, seed in enumerate(seeds)
    ]


@dataclass
class ReplicatedResult:
    """Merged outcome of a sharded replicated run."""

    config: SimulationConfig
    results: list[SimulationResult]
    #: Pooled-count estimates (every hand-off weighted equally).
    blocking: ProportionEstimate
    dropping: ProportionEstimate
    #: Batch-means Student-t intervals over the per-shard proportions.
    blocking_ci: BatchMeansEstimate
    dropping_ci: BatchMeansEstimate
    telemetry: dict | None = None
    #: Merged per-replication time-series (rows distinguished by their
    #: ``label``), or ``None`` when sampling was off.
    timeseries: list | None = None
    #: Merged trace events, one ``pid`` lane per replication, or
    #: ``None`` when tracing was off.
    trace_events: list | None = None
    wall_seconds: float = 0.0
    #: Shared warm-up bookkeeping (0 when sharing was off).
    warm_seconds: float = 0.0
    shared_bytes: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def replications(self) -> int:
        return len(self.results)

    @property
    def blocking_probability(self) -> float:
        return self.blocking.point

    @property
    def dropping_probability(self) -> float:
        return self.dropping.point

    @property
    def events_processed(self) -> int:
        return sum(result.events_processed for result in self.results)

    def metrics_key(self) -> dict:
        """Deterministic digest of everything statistical.

        Covers the pooled counts and each shard's full metrics key, in
        shard order — worker count and scheduling can never appear, so
        equality across runner setups is the determinism invariant the
        tests pin down.
        """
        return {
            "replications": self.replications,
            "blocking": (self.blocking.successes, self.blocking.trials),
            "dropping": (self.dropping.successes, self.dropping.trials),
            "runs": [result.metrics_key() for result in self.results],
        }


def run_replicated(
    config: SimulationConfig,
    replications: int = 8,
    workers: int | None = None,
    ci_level: float = 0.95,
    pool: SimulationPool | None = None,
    share_columns: bool = True,
    warm_duration: float | None = None,
) -> ReplicatedResult:
    """Run ``config`` as ``K`` independent shards and merge the metrics.

    Parameters
    ----------
    config:
        The long run to shard.  ``duration - warmup`` is the measured
        interval being split.
    replications:
        ``K`` — number of independent shards.
    workers:
        Process-pool width (``None``/``<=1`` runs the shards
        sequentially in-process — same merged result, by construction).
    ci_level:
        Confidence level of the batch-means intervals.
    pool:
        Explicit :class:`~repro.simulation.runner.SimulationPool` to run
        on; by default the process-wide shared pool.
    share_columns:
        Run one warm-up in the parent and ship its estimator history to
        every shard via shared memory.  The shards then *also* run their
        own warm-up cut on top of the shared prior — their measured
        windows stay independent, they just start from a learned F_HOE
        instead of an empty one.  Adds a deterministic extra input to
        every shard, so it flips the merged metrics relative to
        ``share_columns=False`` — but stays bit-identical across worker
        counts, which is the invariant that matters.
    warm_duration:
        Virtual seconds of the shared warm-up (defaults to
        ``config.warmup``; 0 disables sharing).
    """
    started = wall_clock.perf_counter()
    shard_configs = replication_configs(config, replications)
    if warm_duration is None:
        warm_duration = config.warmup
    store = None
    warm_seconds = 0.0
    shared_bytes = 0
    if share_columns and warm_duration > 0:
        warm_started = wall_clock.perf_counter()
        # The warm run's seed is the K-th child: never collides with a
        # shard seed, deterministic in the parent seed.
        warm_config = replace(
            config,
            seed=RandomStreams(config.seed).spawn(replications).seed,
            duration=warm_duration,
            warmup=0.0,
            telemetry=False,
            run_id="",
            tracked_cells=(),
            hourly_stats=False,
            label=f"{config.label or config.scheme}[warm]",
        )
        warm_sim = CellularSimulator(warm_config)
        warm_sim.run()
        store = SharedColumnStore.from_network(
            warm_sim.network, origin=warm_duration
        )
        handle = store.handle()
        shard_configs = [
            replace(shard, warm_state=handle) for shard in shard_configs
        ]
        shared_bytes = store.nbytes
        warm_seconds = wall_clock.perf_counter() - warm_started
    try:
        results = run_sweep(shard_configs, workers=workers, pool=pool)
    finally:
        if store is not None:
            store.close()
    requests = sum(
        cell.new_requests for result in results for cell in result.cells
    )
    blocked = sum(
        cell.blocked for result in results for cell in result.cells
    )
    attempts = sum(
        cell.handoff_attempts for result in results for cell in result.cells
    )
    drops = sum(
        cell.handoff_drops for result in results for cell in result.cells
    )
    return ReplicatedResult(
        config=config,
        results=results,
        blocking=wilson_interval(blocked, requests),
        dropping=wilson_interval(drops, attempts),
        blocking_ci=batch_means(
            [
                sum(cell.blocked for cell in result.cells)
                / max(1, sum(cell.new_requests for cell in result.cells))
                for result in results
            ],
            ci_level,
        ),
        dropping_ci=batch_means(
            [
                sum(cell.handoff_drops for cell in result.cells)
                / max(1, sum(cell.handoff_attempts for cell in result.cells))
                for result in results
            ],
            ci_level,
        ),
        telemetry=merge_snapshots(result.telemetry for result in results),
        timeseries=merge_series(result.timeseries for result in results),
        # Re-lane trace events per replication so Perfetto renders one
        # track per shard even though every worker recorded pid=0.
        trace_events=merge_traces(
            [{**event, "pid": index} for event in result.trace_events]
            if result.trace_events
            else None
            for index, result in enumerate(results)
        ),
        wall_seconds=wall_clock.perf_counter() - started,
        warm_seconds=warm_seconds,
        shared_bytes=shared_bytes,
    )
