"""The cellular hand-off simulator: wires every substrate together.

Event flow (all on the :class:`~repro.des.Engine`):

* **arrival** — a new connection request appears in a cell (Poisson,
  A2): the admission policy runs its test (updating ``B_r`` targets as
  the scheme dictates), an admitted connection gets a lifetime-end
  event and — if its mobile moves — a boundary-crossing event; a
  blocked request may schedule a retry (§5.3).
* **crossing** — the mobile reaches a cell boundary: the old cell's BS
  caches the hand-off quadruplet, the new cell's BS feeds its window
  controller, and the hand-off is admitted iff the new cell has spare
  capacity (reserved band included).  Off an open road's end the
  connection simply leaves the system.
* **lifetime end** — the connection completes and releases bandwidth.
* **sample** — periodic observer recording ``B_r``, ``B_u`` and
  ``T_est`` per cell.
"""

from __future__ import annotations

import time as wall_clock

from repro._kernel import kernel_name, set_kernel
from repro.cellular.base_station import EXIT_CELL
from repro.cellular.network import CellularNetwork
from repro.cellular.topology import LinearTopology
from repro.core.admission import AdmissionPolicy, make_policy
from repro.core.qos import AdaptiveQoSPolicy
from repro.core.window import WindowControllerConfig
from repro.des.engine import Engine
from repro.des.events import Event, EventPriority
from repro.des.random import RandomStreams
from repro.estimation.cache import CacheConfig
from repro.mobility.models import (
    LinearMobilityModel,
    MobilityModel,
    Transition,
    TravelDirections,
)
from repro.mobility.speed import ProfileSpeedSampler, UniformSpeedSampler
from repro.obs.logs import ensure_configured, set_run_id
from repro.obs.progress import ProgressReporter
from repro.obs.telemetry import begin_run, new_run_id
from repro.obs.timeseries import TimeSeriesSampler
from repro.obs.trace import begin_trace
from repro.simulation.config import SimulationConfig
from repro.simulation.extensions import ExtensionChain
from repro.simulation.spatial import cell_load_weights
from repro.simulation.metrics import (
    CellStatus,
    MetricsCollector,
    SimulationResult,
)
from repro.traffic.arrivals import (
    ModulatedPoissonArrivals,
    PoissonArrivals,
    RetryPolicy,
)
from repro.traffic.classes import ADAPTIVE_VIDEO, TrafficMix
from repro.traffic.connection import Connection, ConnectionState


class CellularSimulator:
    """One configured, runnable simulation.

    Parameters
    ----------
    config:
        The scenario (defaults follow paper §5.1).
    policy:
        Admission policy override; by default built from
        ``config.scheme``.
    mobility_model:
        Mobility override (e.g. :class:`HexMobilityModel`); by default a
        :class:`LinearMobilityModel` over the configured road.  When the
        override carries its own ``topology`` it replaces the road.
    """

    def __init__(
        self,
        config: SimulationConfig,
        policy: AdmissionPolicy | None = None,
        mobility_model: MobilityModel | None = None,
        extensions=(),
    ) -> None:
        self.config = config
        # Select (and log) the estimation kernel before any estimator
        # work happens; "auto" resolves lazily via REPRO_KERNEL/numpy
        # availability, an explicit choice overrides the environment.
        if config.kernel == "auto":
            kernel_name()
        else:
            set_kernel(config.kernel)
        # Activate this run's telemetry registry and log context before
        # any subsystem grabs instrument handles (the estimators do, at
        # construction).  ``config.telemetry`` forces it on; otherwise
        # the module default (REPRO_TELEMETRY / set_telemetry_enabled)
        # decides.
        ensure_configured()
        self.telemetry = begin_run(
            run_id=config.run_id or None,
            enabled=True if config.telemetry else None,
        )
        self.run_id = (
            self.telemetry.run_id or config.run_id or new_run_id()
        )
        set_run_id(self.run_id)
        # The span tracer follows the same per-run singleton pattern —
        # installed before the network grabs its handle for the
        # flush-tick span.  Spans read only the wall clock, so tracing
        # can never perturb the simulation.
        self.tracer = begin_trace(
            run_id=self.run_id,
            enabled=True if config.trace else None,
        )
        self.engine = Engine()
        self.streams = RandomStreams(config.seed)
        # Hot-path stream handles, resolved once: checkpoint restore
        # mutates these Random objects in place (``setstate``), so the
        # cached references stay valid across save/resume.
        self._arrival_rng = self.streams.get("arrivals")
        self._traffic_rng = self.streams.get("traffic")
        self._mobility_rng = self.streams.get("mobility")
        self._lifetime_rng = self.streams.get("lifetimes")
        self._retry_rng = self.streams.get("retries")
        if config.adaptive_qos:
            self.mix = TrafficMix(
                config.voice_ratio, video_class=ADAPTIVE_VIDEO
            )
        else:
            self.mix = TrafficMix(config.voice_ratio)
        override_topology = getattr(mobility_model, "topology", None)
        if override_topology is not None:
            self.topology = override_topology
        else:
            self.topology = LinearTopology(
                config.num_cells, config.cell_diameter_km, ring=config.ring
            )
        self.network = CellularNetwork(
            self.topology,
            capacity=config.capacity,
            cache_config=CacheConfig(
                interval=config.t_int,
                max_per_pair=config.n_quad,
                weights=config.weights,
                period=config.day_seconds,
            ),
            window_config=WindowControllerConfig(
                target_drop_probability=config.target_drop_probability,
                initial_window=config.t_start,
                step_policy=config.step_policy,
            ),
            handoff_overload=config.handoff_overload,
            reservation_cache=config.reservation_cache,
            coalesced_tick=config.coalesced_tick,
            grouped_flush=config.grouped_flush,
        )
        if config.warm_state is not None:
            # Replication shards start from a shared warm-up's estimator
            # history (see repro.simulation.shared_state).
            config.warm_state.hydrate(self.network)
        if policy is not None:
            self.policy = policy
        elif config.scheme.lower() == "static":
            self.policy = make_policy(
                "static", guard_bandwidth=config.static_guard
            )
        else:
            self.policy = make_policy(config.scheme)
        if config.adaptive_qos and not isinstance(
            self.policy, AdaptiveQoSPolicy
        ):
            self.policy = AdaptiveQoSPolicy(self.policy)
        self.policy.install(self.network)
        self.extensions = ExtensionChain(extensions)
        self.extensions.install(self.network)

        if mobility_model is not None:
            self.mobility = mobility_model
        else:
            if config.speed_profile is not None:
                speed_sampler = ProfileSpeedSampler(
                    config.speed_profile, config.speed_profile_half_width
                )
            else:
                low, high = config.speed_range
                speed_sampler = UniformSpeedSampler(low, high)
            self.mobility = LinearMobilityModel(
                self.topology,
                speed_sampler,
                directions=config.directions,
                stationary_fraction=config.stationary_fraction,
            )

        if config.load_profile is not None:
            self.arrivals = ModulatedPoissonArrivals(
                config.load_profile,
                self.mix.mean_bandwidth,
                config.mean_lifetime,
            )
        else:
            rate = self.mix.arrival_rate_for_load(
                config.offered_load, config.mean_lifetime
            )
            self.arrivals = PoissonArrivals(rate)
        #: Per-cell arrival processes.  Uniform scenarios share one
        #: process object across all cells; a scenario with
        #: ``extra["cell_weights"]`` (hot spots) gets one weighted
        #: process per cell, matching the spatial runner's treatment.
        weights = cell_load_weights(config)
        if weights is None:
            self._cell_arrivals = [self.arrivals] * self.topology.num_cells
        elif config.load_profile is not None:
            self._cell_arrivals = [
                ModulatedPoissonArrivals(
                    config.load_profile,
                    self.mix.mean_bandwidth,
                    config.mean_lifetime,
                    weight=weight,
                )
                for weight in weights
            ]
        else:
            rate = self.mix.arrival_rate_for_load(
                config.offered_load, config.mean_lifetime
            )
            self._cell_arrivals = [
                PoissonArrivals(weight * rate) for weight in weights
            ]

        self.retry = RetryPolicy(
            delay=config.retry_delay,
            giveup_step=config.retry_giveup_step,
            enabled=config.retry_enabled,
        )
        self.metrics = MetricsCollector(
            self.topology.num_cells,
            warmup=config.warmup,
            tracked_cells=config.tracked_cells,
            hourly=config.hourly_stats,
            hour_seconds=config.day_seconds / 24.0,
        )
        self._end_events: dict[int, Event] = {}
        self._crossing_events: dict[int, Event] = {}
        self.active_connections: dict[int, Connection] = {}
        self._finished = False
        #: Random draws made but never scheduled because they fell past
        #: the horizon: ``cell -> (time, order stamp, tiebreak)`` for
        #: Poisson renewals, plus at most one monitor sample.  The
        #: checkpoint store (:mod:`repro.state`) persists these so a
        #: resume under a longer horizon schedules them in exactly the
        #: order the uninterrupted run would have.
        self._suppressed_arrivals: dict[int, tuple[float, int, int]] = {}
        self._suppressed_sample: tuple[float, int, int] | None = None
        self._suppressed_tiebreak = 0
        #: Set by :func:`repro.state.restore_simulator`: the queue is
        #: already populated, so :meth:`run` must skip the initial
        #: scheduling pass.
        self._resumed = False
        #: Optional mid-run checkpoint hook (``repro.state.Checkpointer``),
        #: composed into the engine heartbeat alongside progress.
        self.checkpointer = None
        #: In-run time-series sampler, built lazily by :meth:`run` when
        #: the config enables a cadence (checkpoints read it mid-run).
        self.sampler: TimeSeriesSampler | None = None
        #: Optional :class:`repro.serve.events.RunRecorder`: captures
        #: the run's semantic event stream (arrivals with their
        #: decisions, hand-off resolutions, completions, exits) for
        #: replay through the live-serving path.  Hooks fire after each
        #: event is fully applied — pure observation.
        self.recorder = None

    # ------------------------------------------------------------------
    # run control
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute the configured scenario and return its result."""
        if self._finished:
            raise RuntimeError("simulator instances are single-use")
        started = wall_clock.perf_counter()
        if not self._resumed:
            arrival_rng = self._arrival_rng
            for cell_id in range(self.topology.num_cells):
                first = self._cell_arrivals[cell_id].next_arrival(
                    0.0, arrival_rng
                )
                if first is not None:
                    self.engine.call_at(
                        first,
                        self._on_arrival,
                        cell_id,
                        1,
                        priority=EventPriority.ARRIVAL,
                    )
            if self.config.sample_interval > 0:
                self.engine.call_at(
                    self.config.sample_interval,
                    self._on_sample,
                    priority=EventPriority.MONITOR,
                )
        reporter = None
        if self.config.progress_interval > 0:
            reporter = ProgressReporter(
                self.engine,
                duration=self.config.duration,
                interval=self.config.progress_interval,
                label=self.config.label or self.config.scheme,
            )
        heartbeats = []
        if reporter is not None:
            heartbeats.append(reporter.beat)
        if self.checkpointer is not None:
            heartbeats.append(self.checkpointer.beat)
        if not heartbeats:
            heartbeat = None
        elif len(heartbeats) == 1:
            heartbeat = heartbeats[0]
        else:
            def heartbeat() -> None:
                for beat in heartbeats:
                    beat()
        config = self.config
        observer = None
        if config.series_enabled:
            self.sampler = TimeSeriesSampler(
                self.engine,
                metrics=self.metrics,
                stations=self.network.stations,
                capacity=config.capacity,
                interval=config.series_interval,
                wall_interval=config.series_wall_interval,
                max_samples=config.series_max_samples,
                stream=config.series_path or None,
                run_id=self.run_id,
                label=config.label or config.scheme,
                telemetry=self.telemetry,
            )
            observer = self.sampler.maybe_sample
        with self.tracer.span(
            "run.engine", label=config.label or config.scheme
        ):
            self.engine.run(
                until=config.duration,
                heartbeat=heartbeat,
                observer=observer,
            )
        if reporter is not None:
            reporter.final()
        if self.sampler is not None:
            self.sampler.final()
        self._finished = True
        return self._build_result(wall_clock.perf_counter() - started)

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _on_arrival(self, cell_id: int, attempt: int) -> None:
        now = self.engine.now
        arrival_rng = self._arrival_rng
        if attempt == 1:
            # Schedule the next fresh request of this cell's Poisson
            # process (retries are extra events, not process renewals).
            next_time = self._cell_arrivals[cell_id].next_arrival(
                now, arrival_rng
            )
            if next_time is not None:
                if next_time <= self.config.duration:
                    self.engine.call_at(
                        next_time,
                        self._on_arrival,
                        cell_id,
                        1,
                        priority=EventPriority.ARRIVAL,
                    )
                else:
                    # Past the horizon: remember the draw (with the
                    # order stamp scheduling would have consumed) so a
                    # checkpoint resumed under a longer horizon can
                    # still schedule it in its rightful place.
                    self._suppressed_arrivals[cell_id] = (
                        next_time,
                        self.engine.sequence,
                        self._suppressed_tiebreak,
                    )
                    self._suppressed_tiebreak += 1
        self._handle_request(cell_id, attempt)

    def _handle_request(self, cell_id: int, attempt: int) -> None:
        now = self.engine.now
        traffic_class = self.mix.sample(self._traffic_rng)
        decision = self.policy.admit_new(
            self.network, cell_id, traffic_class.bandwidth, now
        )
        self.metrics.record_admission_test(
            decision.calculations, decision.messages
        )
        admitted = decision.admitted
        connection = None
        if admitted:
            mobile = self.mobility.spawn(cell_id, now, self._mobility_rng)
            connection = Connection(
                traffic_class,
                start_time=now,
                cell_id=cell_id,
                mobile=mobile,
                prev_cell=None,
                cell_entry_time=now,
            )
            # Extensions (e.g. the wired backbone) may veto an accept.
            if self.extensions and not self.extensions.admit_new(
                connection, cell_id, now
            ):
                admitted = False
        self.metrics.record_request(cell_id, now, blocked=not admitted)
        if self.recorder is not None:
            self.recorder.on_arrival(
                now,
                cell_id,
                traffic_class.name,
                admitted,
                connection.connection_id if admitted else None,
            )
        if not admitted:
            if self.retry.should_retry(attempt, self._retry_rng):
                self.engine.call_in(
                    self.retry.delay,
                    self._handle_request,
                    cell_id,
                    attempt + 1,
                    priority=EventPriority.ARRIVAL,
                )
            return
        self.network.cell(cell_id).attach(connection)
        self.extensions.on_admitted(connection, now)
        self.active_connections[connection.connection_id] = connection
        lifetime = self._lifetime_rng.expovariate(
            1.0 / self.config.mean_lifetime
        )
        self._end_events[connection.connection_id] = self.engine.call_in(
            lifetime,
            self._on_lifetime_end,
            connection,
            priority=EventPriority.DEPARTURE,
        )
        self._schedule_crossing(connection)

    def _schedule_crossing(self, connection: Connection) -> None:
        mobile = connection.mobile
        if mobile is None or not mobile.is_moving:
            return
        transition = self.mobility.next_transition(
            mobile, self.engine.now, self._mobility_rng
        )
        if transition is None:
            return
        self._crossing_events[connection.connection_id] = self.engine.call_at(
            transition.time,
            self._on_crossing,
            connection,
            transition,
            priority=EventPriority.HANDOFF,
        )

    def _on_crossing(
        self,
        connection: Connection,
        transition: Transition,
        soft_deadline: float | None = None,
    ) -> None:
        if not connection.is_active:
            return
        now = self.engine.now
        self._crossing_events.pop(connection.connection_id, None)
        old_cell = connection.cell_id
        new_cell = transition.next_cell
        if new_cell == EXIT_CELL:
            self._record_departure(connection, old_cell, new_cell, now)
            self.network.cell(old_cell).detach(connection)
            connection.finish(ConnectionState.EXITED, now)
            self._cancel_end(connection)
            self.active_connections.pop(connection.connection_id, None)
            self.metrics.record_exit(old_cell, now)
            if self.recorder is not None:
                self.recorder.on_exit(now, connection.connection_id)
            self.policy.on_release(self.network, old_cell, now)
            self.extensions.on_connection_end(connection, now)
            self._forget_mobile(connection)
            return
        allocation = self.policy.handoff_allocation(
            self.network, new_cell, connection
        )
        admitted = allocation is not None
        if admitted and self.extensions and not self.extensions.admit_handoff(
            connection, old_cell, new_cell, now
        ):
            admitted = False  # e.g. no wired bandwidth on the new route
        if not admitted and self.config.soft_handoff_window > 0:
            # CDMA soft hand-off (§7): the mobile stays reachable from
            # the old BS inside the overlap region; retry instead of
            # dropping until the window closes.
            if soft_deadline is None:
                soft_deadline = now + self.config.soft_handoff_window
            retry_at = now + self.config.soft_handoff_retry_interval
            if retry_at <= soft_deadline:
                self._crossing_events[connection.connection_id] = (
                    self.engine.call_at(
                        retry_at,
                        self._on_crossing,
                        connection,
                        transition,
                        soft_deadline,
                        priority=EventPriority.HANDOFF,
                    )
                )
                return
        # Resolution: the mobile actually leaves the old cell now.
        self._record_departure(connection, old_cell, new_cell, now)
        self.network.cell(old_cell).detach(connection)
        self.network.station(new_cell).on_handoff_arrival(
            dropped=not admitted, now=now
        )
        self.metrics.record_handoff(new_cell, now, dropped=not admitted)
        if self.recorder is not None:
            self.recorder.on_handoff(
                now, connection.connection_id, new_cell, admitted
            )
        # The departure freed bandwidth in the old cell either way.
        self.policy.on_release(self.network, old_cell, now)
        if not admitted:
            connection.finish(ConnectionState.DROPPED, now)
            self._cancel_end(connection)
            self.active_connections.pop(connection.connection_id, None)
            self.extensions.on_connection_end(connection, now)
            self._forget_mobile(connection)
            return
        connection.allocated_bandwidth = allocation
        mobile = connection.mobile
        if mobile is not None and isinstance(self.mobility, LinearMobilityModel):
            boundary = self.mobility.crossing_position(mobile)
            mobile.place(boundary, new_cell, now)
        elif mobile is not None:
            mobile.cell_id = new_cell
        connection.move_to(new_cell, now)
        self.network.cell(new_cell).attach(connection)
        self.extensions.on_handoff(connection, old_cell, new_cell, now)
        self._schedule_crossing(connection)

    def _forget_mobile(self, connection: Connection) -> None:
        """Release per-mobile state kept by stateful mobility models."""
        forget = getattr(self.mobility, "forget", None)
        if forget is not None and connection.mobile is not None:
            forget(connection.mobile)

    def _record_departure(
        self,
        connection: Connection,
        old_cell: int,
        new_cell: int,
        now: float,
    ) -> None:
        """Cache the departing mobile's quadruplet at the old cell's BS.

        Recorded even for road exits: the estimator then knows those
        mobiles were not heading to a reservable neighbour.
        """
        self.network.station(old_cell).record_departure(
            now, connection.prev_cell, new_cell, connection.cell_entry_time
        )

    def _on_lifetime_end(self, connection: Connection) -> None:
        if not connection.is_active:
            return
        now = self.engine.now
        self._end_events.pop(connection.connection_id, None)
        crossing = self._crossing_events.pop(connection.connection_id, None)
        if crossing is not None:
            crossing.cancel()
        self.network.cell(connection.cell_id).detach(connection)
        connection.finish(ConnectionState.COMPLETED, now)
        self.active_connections.pop(connection.connection_id, None)
        self.metrics.record_completion(connection.cell_id, now)
        if self.recorder is not None:
            self.recorder.on_complete(now, connection.connection_id)
        self.policy.on_release(self.network, connection.cell_id, now)
        self.extensions.on_connection_end(connection, now)
        self._forget_mobile(connection)

    def _cancel_end(self, connection: Connection) -> None:
        event = self._end_events.pop(connection.connection_id, None)
        if event is not None:
            event.cancel()

    def _on_sample(self) -> None:
        now = self.engine.now
        for station in self.network.stations:
            self.metrics.sample_cell(
                station.cell_id,
                now,
                station.cell.reserved_target,
                station.cell.used_bandwidth,
                station.t_est,
            )
        next_time = now + self.config.sample_interval
        if next_time <= self.config.duration:
            self.engine.call_at(
                next_time, self._on_sample, priority=EventPriority.MONITOR
            )
        else:
            self._suppressed_sample = (
                next_time,
                self.engine.sequence,
                self._suppressed_tiebreak,
            )
            self._suppressed_tiebreak += 1

    # ------------------------------------------------------------------
    # result assembly
    # ------------------------------------------------------------------
    def _harvest_telemetry(self, wall_seconds: float) -> dict | None:
        """Fold the run's plain-int hot-path counters into the registry.

        Instrumented objects (engine, estimators, cells, stations,
        window controllers) count on cheap attributes during the run;
        one pass here turns them into named telemetry series.  Returns
        the finished snapshot, or ``None`` when telemetry is off.
        """
        tel = self.telemetry
        if not tel.enabled:
            return None
        engine = self.engine
        tel.counter("des.events_fired").inc(engine.events_processed)
        tel.counter("des.events_cancelled").inc(engine.events_cancelled)
        tel.counter("des.heap_compactions").inc(engine.heap_compactions)
        tel.counter("des.event_pool", outcome="hit").inc(engine.pool_hits)
        tel.counter("des.event_pool", outcome="miss").inc(engine.pool_misses)
        tel.gauge("des.heap_len").set(engine.queue_len)
        if wall_seconds > 0:
            tel.gauge("des.events_per_sec").set(
                engine.events_processed / wall_seconds
            )
        run_timer = tel.timer("simulation.run")
        run_timer.seconds += wall_seconds
        run_timer.count += 1
        tel.counter("simulation.runs", kernel=kernel_name()).inc()

        metrics = self.metrics
        requests = sum(cell.new_requests for cell in metrics.cells)
        blocked = sum(cell.blocked for cell in metrics.cells)
        attempts = sum(cell.handoff_attempts for cell in metrics.cells)
        drops = sum(cell.handoff_drops for cell in metrics.cells)
        admissions = tel.counter
        admissions("cellular.admissions", kind="new", outcome="accepted").inc(
            requests - blocked
        )
        admissions("cellular.admissions", kind="new", outcome="blocked").inc(
            blocked
        )
        admissions(
            "cellular.admissions", kind="handoff", outcome="accepted"
        ).inc(attempts - drops)
        admissions(
            "cellular.admissions", kind="handoff", outcome="dropped"
        ).inc(drops)
        tel.counter("cellular.admission_tests").inc(
            metrics.total_admission_tests
        )

        messages = updates = rebuilds = 0
        steps_up = steps_down = window_handoffs = window_drops = 0
        snap_hits = snap_builds = snap_invalidations = 0
        vector_batches = scalar_batches = vector_rows = scalar_rows = 0
        for station in self.network.stations:
            messages += station.messages_sent
            updates += station.reservation_calculations
            rebuilds += station.cell.group_rebuilds
            controller = station.window
            window_handoffs += controller.total_handoffs
            window_drops += controller.total_drops
            for adjustment in controller.adjustments:
                if adjustment.increased:
                    steps_up += 1
                else:
                    steps_down += 1
            tel.gauge("window.t_est", cell=str(station.cell_id)).set(
                controller.t_est
            )
            # Custom estimators (estimator_factory overrides) may not
            # carry the standard counters; treat absences as zero.
            estimator = station.estimator
            snap_hits += getattr(estimator, "snapshot_hits", 0)
            snap_builds += getattr(estimator, "snapshot_builds", 0)
            snap_invalidations += getattr(
                estimator, "snapshot_invalidations", 0
            )
            vector_batches += getattr(estimator, "eq4_vector_batches", 0)
            scalar_batches += getattr(estimator, "eq4_scalar_batches", 0)
            vector_rows += getattr(estimator, "eq4_vector_rows", 0)
            scalar_rows += getattr(estimator, "eq4_scalar_rows", 0)
        tel.counter("cellular.messages_sent").inc(messages)
        tel.counter("cellular.reservation_updates").inc(updates)
        tel.counter("cellular.tick_flushes").inc(
            getattr(self.network, "tick_flushes", 0)
        )
        tel.counter("cellular.tick_targets").inc(
            getattr(self.network, "tick_targets", 0)
        )
        tel.counter("cellular.tick_suppliers", path="grouped").inc(
            getattr(self.network, "tick_grouped_suppliers", 0)
        )
        tel.counter("cellular.tick_suppliers", path="fallback").inc(
            getattr(self.network, "tick_fallback_suppliers", 0)
        )
        tel.counter("cellular.group_rebuilds").inc(rebuilds)
        tel.counter("window.t_est_steps", direction="up").inc(steps_up)
        tel.counter("window.t_est_steps", direction="down").inc(steps_down)
        tel.counter("window.handoffs").inc(window_handoffs)
        tel.counter("window.drops").inc(window_drops)
        tel.counter("estimation.snapshot", outcome="hit").inc(snap_hits)
        tel.counter("estimation.snapshot", outcome="build").inc(snap_builds)
        tel.counter("estimation.snapshot_invalidations").inc(
            snap_invalidations
        )
        tel.counter("estimation.eq4_batches", kernel="numpy").inc(
            vector_batches
        )
        tel.counter("estimation.eq4_batches", kernel="python").inc(
            scalar_batches
        )
        tel.counter("estimation.eq4_rows", kernel="numpy").inc(vector_rows)
        tel.counter("estimation.eq4_rows", kernel="python").inc(scalar_rows)
        return tel.snapshot()

    def _build_result(self, wall_seconds: float) -> SimulationResult:
        config = self.config
        statuses = [
            CellStatus(
                cell_id=station.cell_id,
                blocking_probability=(
                    self.metrics.cells[station.cell_id].blocking_probability
                ),
                dropping_probability=(
                    self.metrics.cells[station.cell_id].dropping_probability
                ),
                t_est=station.t_est,
                reserved_target=station.cell.reserved_target,
                used_bandwidth=station.cell.used_bandwidth,
            )
            for station in self.network.stations
        ]
        return SimulationResult(
            label=config.label or config.scheme,
            scheme=self.policy.name,
            offered_load=config.offered_load,
            duration=config.duration,
            warmup=config.warmup,
            num_cells=self.topology.num_cells,
            cells=self.metrics.cells,
            statuses=statuses,
            average_reservation=self.metrics.average_reservation(),
            average_used=self.metrics.average_used(),
            average_calculations=self.metrics.average_calculations(),
            average_messages=self.metrics.average_messages(),
            total_admission_tests=self.metrics.total_admission_tests,
            hourly=self.metrics.hourly_buckets(),
            t_est_traces=self.metrics.t_est_traces,
            reservation_traces=self.metrics.reservation_traces,
            phd_traces=self.metrics.phd_traces,
            events_processed=self.engine.events_processed,
            wall_seconds=wall_seconds,
            run_id=self.run_id,
            telemetry=self._harvest_telemetry(wall_seconds),
            timeseries=(
                self.sampler.series() if self.sampler is not None else None
            ),
            trace_events=self.tracer.events(),
        )


def simulate(config: SimulationConfig, **overrides: object) -> SimulationResult:
    """Build and run a simulator in one call (the main library entry)."""
    return CellularSimulator(config, **overrides).run()  # type: ignore[arg-type]
