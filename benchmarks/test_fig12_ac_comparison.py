"""Figure 12: AC1 vs AC2 vs AC3 — P_CB and P_HD vs offered load.

Paper shape: the three schemes have nearly identical P_CB (AC1 slightly
lowest); AC2 and AC3 bound P_HD while AC1 exceeds the target in the
heavily over-loaded region — yet stays below ~0.02-0.03.
"""

from benchmarks.conftest import run_once
from repro.experiments.sweeps import run_fig12_fig13_comparison


def test_fig12_scheme_comparison(benchmark, bench_duration, bench_loads):
    fig12, _fig13 = run_once(
        benchmark,
        run_fig12_fig13_comparison,
        loads=bench_loads,
        voice_ratio=1.0,
        high_mobility=True,
        duration=max(bench_duration, 400.0),
    )
    print()
    print(fig12.render())
    overload = bench_loads[-1]

    def at_overload(name):
        return dict(fig12.series_by_name(name).points)[overload]

    # AC2/AC3 keep the target (with CI slack); AC1 drops more than AC3.
    assert at_overload("PHD AC2") <= 0.02
    assert at_overload("PHD AC3") <= 0.02
    assert at_overload("PHD AC1") >= at_overload("PHD AC3")
    assert at_overload("PHD AC1") <= 0.05
    # P_CB ordering: AC1 admits at least as greedily as AC3.
    assert at_overload("PCB AC1") <= at_overload("PCB AC3") + 0.03
