"""Ablation: the wired-backbone extension (paper §2/§7).

Expected shape: with tight trunks, blocking moves from the radio to the
wired layer (wired blocks > 0, higher P_CB than radio-only) while the
hand-off guarantee is *structurally* preserved — in a tree-like
backbone a re-route only adds links near the mobile; the loaded
aggregation trunks are shared between old and new routes, so re-routes
never contend for them.  Predictive link reservation keeps utilization
strictly under 100%.
"""

from benchmarks.conftest import run_once
from repro.simulation import CellularSimulator, stationary
from repro.wired import (
    WiredBackboneExtension,
    WiredReservationManager,
    chain_backbone,
)


def _run(duration, predictive, manager_out):
    manager = WiredReservationManager(
        chain_backbone(10, access_capacity=250.0, trunk_capacity=450.0),
        predictive=predictive,
    )
    manager_out.append(manager)
    config = stationary(
        "AC3", offered_load=200.0, voice_ratio=0.8,
        duration=duration, warmup=duration / 4.0, seed=6,
    )
    simulator = CellularSimulator(
        config, extensions=[WiredBackboneExtension(manager)]
    )
    return simulator.run()


def test_wired_backbone(benchmark, bench_duration):
    duration = max(bench_duration, 400.0)
    managers = []
    radio_only = CellularSimulator(
        stationary("AC3", offered_load=200.0, voice_ratio=0.8,
                   duration=duration, warmup=duration / 4.0, seed=6)
    ).run()
    predictive = run_once(benchmark, _run, duration, True, managers)
    best_effort = _run(duration, False, managers)
    manager_predictive, manager_best = managers
    print(
        f"\nradio-only P_CB={radio_only.blocking_probability:.3f}"
        f"  best-effort P_CB={best_effort.blocking_probability:.3f}"
        f" (wired blocks {manager_best.wired_blocks})"
        f"  predictive P_CB={predictive.blocking_probability:.3f}"
        f" max-util={manager_predictive.max_utilization():.2f}"
    )
    # The backbone bottleneck raises blocking above the radio-only run.
    assert best_effort.blocking_probability > radio_only.blocking_probability
    assert manager_best.wired_blocks > 0
    # Structural protection of re-routes in tree backbones.
    assert manager_best.wired_drops == 0
    assert manager_predictive.wired_drops == 0
    # Predictive reservation holds back re-route headroom.
    assert manager_predictive.max_utilization() <= 1.0 + 1e-9
    # The hand-off target still holds end to end.
    assert predictive.dropping_probability <= 0.02
    # Accounting stayed consistent on every link.
    for manager in managers:
        for link in manager.graph.links():
            assert link.used_bandwidth <= link.capacity + 1e-9
