"""Ablation: QoS adaptation composed with the reservation scheme (§1).

Expected shape: with degradable video, hand-offs that would have been
dropped continue at the base layer (degradations > 0), upgrades restore
full rate when bandwidth frees, and the steady-state P_HD stays bounded
even though reservation now uses the *minimum* QoS basis.
"""

from dataclasses import replace

from benchmarks.conftest import run_once
from repro.simulation import CellularSimulator, stationary


def _run_pair(duration):
    base = stationary(
        "AC3", offered_load=250.0, voice_ratio=0.5,
        duration=duration, warmup=duration / 3.0, seed=9,
    )
    rigid_simulator = CellularSimulator(base)
    rigid = rigid_simulator.run()
    adaptive_simulator = CellularSimulator(replace(base, adaptive_qos=True))
    adaptive = adaptive_simulator.run()
    return rigid, adaptive, adaptive_simulator.policy


def test_adaptive_qos(benchmark, bench_duration):
    duration = max(bench_duration, 900.0)
    rigid, adaptive, policy = run_once(benchmark, _run_pair, duration)
    print(
        f"\nrigid    P_CB={rigid.blocking_probability:.3f}"
        f" P_HD={rigid.dropping_probability:.4f}"
        f"\nadaptive P_CB={adaptive.blocking_probability:.3f}"
        f" P_HD={adaptive.dropping_probability:.4f}"
        f" degradations={policy.degradations} upgrades={policy.upgrades}"
    )
    # Degradation actually happens and is partially undone later.
    assert policy.degradations > 0
    assert policy.upgrades > 0
    # The drop target still holds with min-QoS reservation (the window
    # controller compensates for the smaller basis).
    assert adaptive.dropping_probability <= 0.02
    # Blocking does not get materially worse.
    assert (
        adaptive.blocking_probability
        <= rigid.blocking_probability + 0.05
    )
