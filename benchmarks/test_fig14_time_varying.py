"""Figure 14: two profile-driven days with retries, AC1/AC2/AC3.

Paper shape: off-peak both probabilities are negligible; during the
rush-hour peaks P_HD stays bounded by the target for all three schemes
while P_CB rises (amplified by the retry positive feedback, which also
pushes the actual offered load L_a above the original L_o).
"""

from benchmarks.conftest import run_once
from repro.experiments.timevarying import run_fig14


def test_fig14_two_day_cycle(benchmark):
    output = run_once(
        benchmark,
        run_fig14,
        schemes=("AC1", "AC3"),
        days=2.0,
        time_compression=96.0,  # one "day" = 15 simulated minutes
    )
    print()
    print(output.render())

    def series(name):
        return dict(output.series_by_name(name).points)

    for scheme in ("AC1", "AC3"):
        pcb = series(f"PCB {scheme}")
        night = [pcb[hour] for hour in pcb if 0 <= (hour % 24) < 6]
        peak = [pcb[hour] for hour in pcb if (hour % 24) in (8.5, 9.5, 17.5)]
        # Off-peak blocking is negligible; rush hours are not.
        assert max(night, default=0.0) <= 0.05
        assert max(peak) > 0.2
    # Retry feedback: the actual load exceeds the original at the peak.
    original = series("profile Lo")
    actual = series("La AC3")
    peak_hour = 9.5
    assert actual[peak_hour] > 0.8 * original[peak_hour]
