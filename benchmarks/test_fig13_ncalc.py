"""Figure 13: average number of B_r calculations per admission test.

Paper shape: N_calc(AC1) = 1 and N_calc(AC2) = 3 exactly (1-D ring);
AC3 sits at 1 when under-loaded, starts climbing around L ~ 80 and
stays below ~1.5 even at L = 300.
"""

from benchmarks.conftest import run_once
from repro.experiments.sweeps import run_fig12_fig13_comparison


def test_fig13_complexity(benchmark, bench_duration):
    loads = (60.0, 150.0, 300.0)
    _fig12, fig13 = run_once(
        benchmark,
        run_fig12_fig13_comparison,
        loads=loads,
        voice_ratio=1.0,
        high_mobility=True,
        duration=bench_duration,
    )
    print()
    print(fig13.render())
    ac1 = dict(fig13.series_by_name("Ncalc AC1").points)
    ac2 = dict(fig13.series_by_name("Ncalc AC2").points)
    ac3 = dict(fig13.series_by_name("Ncalc AC3").points)
    for load in loads:
        assert ac1[load] == 1.0
        assert ac2[load] == 3.0
        assert 1.0 <= ac3[load] <= 2.0
    # AC3's hybrid cost grows with load but stays well under AC2's.
    assert ac3[60.0] < 1.1
    assert ac3[300.0] > ac3[60.0]
    assert ac3[300.0] < 0.6 * ac2[300.0]
