"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables/figures at a
CI-friendly scale (shorter horizon, two-point load axis), prints the
same rows/series the paper reports, and asserts the qualitative shape
(who wins, where the target is met).  The recorded full-scale numbers
live in EXPERIMENTS.md (produced by ``scripts/run_experiments.py``).

Scale knobs can be raised via environment variables::

    REPRO_BENCH_DURATION=2000 pytest benchmarks/ --benchmark-only
"""

import os

import pytest

#: Horizon (simulated seconds) used by the CI-sized benchmark runs.
BENCH_DURATION = float(os.environ.get("REPRO_BENCH_DURATION", "300"))
#: Offered-load axis used by the sweep benchmarks.
BENCH_LOADS = (100.0, 300.0)


@pytest.fixture
def bench_duration():
    return BENCH_DURATION


@pytest.fixture
def bench_loads():
    return BENCH_LOADS


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(
        function, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
