"""Figure 7: static reservation (G=10) P_CB and P_HD vs offered load.

Paper shape: 10 BUs of guard band hold the 1% hand-off-drop target for
pure voice but fail once video enters the mix (R_vo = 0.5) at high
mobility — static reservation cannot track traffic composition.
"""

from benchmarks.conftest import run_once
from repro.experiments.sweeps import run_fig07_static


def test_fig07_static_reservation(benchmark, bench_duration, bench_loads):
    output = run_once(
        benchmark,
        run_fig07_static,
        loads=bench_loads,
        voice_ratios=(1.0, 0.5),
        high_mobility=True,
        duration=bench_duration,
    )
    print()
    print(output.render())

    def final_phd(name):
        return output.series_by_name(name).points[-1][1]

    # Voice-only: the guard band is generous; mixed video: it is not.
    assert final_phd("PHD Rvo=1") <= 0.012
    assert final_phd("PHD Rvo=0.5") > final_phd("PHD Rvo=1")
    # Blocking rises with load for every mix.
    for ratio in ("1", "0.5"):
        points = output.series_by_name(f"PCB Rvo={ratio}").points
        assert points[-1][1] > points[0][1]
