"""Figure 9: AC3's average target reservation B_r and used bandwidth B_u.

Paper shape: B_r grows with offered load and saturates in the
over-loaded region; more video (lower R_vo) and higher mobility both
raise B_r; B_u moves inversely to B_r.
"""

from benchmarks.conftest import run_once
from repro.experiments.sweeps import run_fig08_fig09_ac3


def test_fig09_reservation_vs_load(benchmark, bench_duration, bench_loads):
    _fig8, fig9 = run_once(
        benchmark,
        run_fig08_fig09_ac3,
        loads=bench_loads,
        voice_ratios=(1.0, 0.5),
        high_mobility=True,
        duration=bench_duration,
    )
    print()
    print(fig9.render())
    for ratio in ("1", "0.5"):
        reservation = fig9.series_by_name(f"Br Rvo={ratio}").points
        used = fig9.series_by_name(f"Bu Rvo={ratio}").points
        # B_r increases with load; B_u stays within capacity.
        assert reservation[-1][1] >= reservation[0][1]
        assert all(0.0 <= value <= 100.0 for _, value in used)
    # More video -> more reserved bandwidth (at the overloaded point).
    voice_only = fig9.series_by_name("Br Rvo=1").points[-1][1]
    half_video = fig9.series_by_name("Br Rvo=0.5").points[-1][1]
    assert half_video > voice_only


def test_fig09_mobility_raises_reservation(benchmark, bench_duration):
    loads = (300.0,)
    _f8_high, fig9_high = run_fig08_fig09_ac3(
        loads=loads, voice_ratios=(1.0,), high_mobility=True,
        duration=bench_duration,
    )

    def low():
        return run_fig08_fig09_ac3(
            loads=loads, voice_ratios=(1.0,), high_mobility=False,
            duration=bench_duration,
        )

    _f8_low, fig9_low = run_once(benchmark, low)
    high_br = fig9_high.series_by_name("Br Rvo=1").points[0][1]
    low_br = fig9_low.series_by_name("Br Rvo=1").points[0][1]
    print(f"\nB_r at L=300: high mobility {high_br:.2f}, low {low_br:.2f}")
    assert high_br > low_br
