"""Figure 11: cumulative P_HD at cells <5> and <6> over time (L=300).

Paper shape: P_HD may spike above the 0.01 target early (cold caches,
T_est = T_start) but settles at or below it as history accumulates and
T_est adapts.
"""

from benchmarks.conftest import run_once
from repro.experiments.traces import run_fig10_fig11, run_trace_experiment


def test_fig11_cumulative_drop_probability(benchmark, bench_duration):
    duration = max(bench_duration, 600.0)
    result = run_once(benchmark, run_trace_experiment, duration=duration)
    _fig10, fig11 = run_fig10_fig11(result=result)
    print()
    print(fig11.render())
    for cell_id in (4, 5):
        trace = result.phd_traces[cell_id]
        assert trace, "expected hand-offs into the tracked cell"
        final = trace[-1].value
        # Settles near the target; allow slack for the short horizon.
        assert final <= 0.03
        # The trace is a valid probability path.
        assert all(0.0 <= point.value <= 1.0 for point in trace)
        # The cumulative curve ends at or below its running peak — the
        # controller pulls the ratio back after every burst of drops.
        peak = max(point.value for point in trace)
        assert final <= peak + 1e-9
        # And it ends near the target (drops are bursty, so the early
        # half alone is not a reliable comparator on short horizons).
        assert final <= 0.02
