"""Table 2: per-cell end state on the over-loaded ring, AC1 vs AC3.

Paper shape: AC1's per-cell performance oscillates — alternating cells
show very high P_CB and over-target P_HD — while AC3 balances P_CB
across the ring and keeps every cell's P_HD bounded.
"""

import statistics

from benchmarks.conftest import run_once
from repro.experiments.celltables import run_table2


def test_table2_per_cell_balance(benchmark, bench_duration):
    output = run_once(
        benchmark, run_table2, duration=max(bench_duration, 600.0)
    )
    print()
    print(output.render())

    def pcbs(scheme):
        return [row[1] for row in output.tables[f"({scheme})"].rows]

    def phds(scheme):
        return [row[2] for row in output.tables[f"({scheme})"].rows]

    # AC3 bounds every cell; AC1's worst cell drops more.
    assert max(phds("AC3")) <= 0.025
    assert max(phds("AC1")) >= max(phds("AC3"))
    # Balance: AC1's P_CB spread across cells exceeds AC3's.
    assert statistics.pstdev(pcbs("AC1")) > statistics.pstdev(pcbs("AC3"))
