"""Ablation: sensitivity of AC3 to the N_quad history depth (§3.1).

With a handful of quadruplets per (prev, next) pair the estimator is
noisy; the paper's N_quad = 100 is comfortably past the knee.  P_HD
must stay bounded at every depth — the window controller compensates
for estimator inaccuracy — while B_r efficiency varies.
"""

from benchmarks.conftest import run_once
from repro.experiments.ablations import run_ablation_estimator_depth


def test_estimator_history_depth(benchmark, bench_duration):
    output = run_once(
        benchmark,
        run_ablation_estimator_depth,
        depths=(5, 100),
        duration=max(bench_duration, 400.0),
    )
    print()
    print(output.render())
    rows = {row[0]: row for row in output.tables["history depth"].rows}
    for depth, row in rows.items():
        assert row[2] <= 0.03, f"P_HD unbounded at N_quad={depth}"
        assert row[3] >= 0.0
