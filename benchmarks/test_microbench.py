"""Micro-benchmarks of the hot paths (not tied to a paper artifact).

These time the two operations that dominate a run — the Bayes Eq. 4
query and the full Eq. 6 reservation update — plus the raw event loop,
so performance regressions show up independently of the experiment
suites.
"""

import random

from repro.cellular.network import CellularNetwork
from repro.cellular.topology import LinearTopology
from repro.des import Engine
from repro.estimation.cache import CacheConfig
from repro.estimation.estimator import MobilityEstimator
from repro.traffic.classes import VOICE
from repro.traffic.connection import Connection


def build_estimator(entries=100):
    estimator = MobilityEstimator(CacheConfig(interval=None))
    rng = random.Random(0)
    for index in range(entries):
        estimator.record_departure(
            float(index), 1, rng.choice((0, 2)), rng.uniform(10.0, 60.0)
        )
    return estimator


def test_bench_handoff_probability(benchmark):
    estimator = build_estimator()
    estimator.function_for(1000.0, 1)  # warm the snapshot

    def query():
        return estimator.handoff_probability(1000.0, 1, 20.0, 2, 15.0)

    result = benchmark(query)
    assert 0.0 <= result <= 1.0


def test_bench_reservation_update(benchmark):
    network = CellularNetwork(
        LinearTopology(10),
        cache_config=CacheConfig(interval=None),
    )
    rng = random.Random(1)
    for neighbor in (1, 9):
        station = network.station(neighbor)
        for index in range(100):
            station.estimator.record_departure(
                float(index), None, 0, rng.uniform(10.0, 60.0)
            )
        for _ in range(80):
            connection = Connection(
                VOICE, 0.0, neighbor, cell_entry_time=rng.uniform(0, 90)
            )
            network.cell(neighbor).attach(connection)
    station = network.station(0)
    station.window.t_est = 10.0

    reservation = benchmark(station.update_target_reservation, 100.0)
    assert reservation >= 0.0


def test_bench_event_loop(benchmark):
    def run_10k_events():
        engine = Engine()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                engine.call_in(1.0, tick)

        engine.call_in(1.0, tick)
        engine.run()
        return count[0]

    assert benchmark(run_10k_events) == 10_000
