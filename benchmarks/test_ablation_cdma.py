"""Ablation: CDMA soft capacity + soft hand-off (paper §7).

Expected shape: each mechanism reduces hand-off drops several-fold on
the over-loaded static baseline; combined they compound.  P_CB rises
slightly (head-room and waiting mobiles consume bandwidth).
"""

from dataclasses import replace

from benchmarks.conftest import run_once
from repro.simulation import CellularSimulator, stationary


def _run_variants(duration):
    base = stationary(
        "static", offered_load=250.0, voice_ratio=0.5,
        duration=duration, warmup=duration / 4.0, seed=3,
    )
    variants = {
        "hard": base,
        "soft-capacity": replace(base, handoff_overload=1.10),
        "soft-handoff": replace(base, soft_handoff_window=5.0),
        "both": replace(
            base, handoff_overload=1.10, soft_handoff_window=5.0
        ),
    }
    return {
        name: CellularSimulator(config).run()
        for name, config in variants.items()
    }


def test_cdma_mechanisms(benchmark, bench_duration):
    results = run_once(benchmark, _run_variants, max(bench_duration, 400.0))
    print()
    for name, result in results.items():
        print(
            f"{name:<14} P_CB={result.blocking_probability:.3f} "
            f"P_HD={result.dropping_probability:.4f}"
        )
    hard = results["hard"].dropping_probability
    assert hard > 0.01  # the baseline really is in trouble here
    assert results["soft-capacity"].dropping_probability < hard
    assert results["soft-handoff"].dropping_probability < hard
    assert results["both"].dropping_probability < hard / 2
    # The gain is paid in (slightly) higher blocking.
    assert (
        results["both"].blocking_probability
        >= results["hard"].blocking_probability - 0.02
    )
