"""Ablation: the scheme on a 2-D hex grid (the paper's §7 future work).

Six neighbours per cell: the estimator must learn richer (prev, next)
structure and AC3's hybrid test saves proportionally more signaling.
Static reservation vs AC3 on a mixed vehicular/pedestrian/stationary
population.
"""

from benchmarks.conftest import run_once
from repro.experiments.ablations import run_ablation_hex2d


def test_hex_grid_deployment(benchmark, bench_duration):
    output = run_once(
        benchmark,
        run_ablation_hex2d,
        duration=max(bench_duration, 600.0),
    )
    print()
    print(output.render())
    rows = {row[0]: row for row in output.tables["hex grid"].rows}
    assert set(rows) == {"static", "AC3"}
    # AC3 bounds drops on the grid too (slack for the short horizon).
    assert rows["AC3"][2] <= 0.03
    # The hybrid test stays far below the 7 calcs AC2 would need.
    assert rows["AC3"][3] <= 4.0
    assert rows["static"][3] == 0.0
