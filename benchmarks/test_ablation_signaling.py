"""Ablation: backhaul signaling cost under the Figure 1 interconnects.

Every B_r computation costs one round-trip per neighbour; a star
topology doubles the transport hops (BS -> MSC -> BS).  AC3's hybrid
test should cost far fewer messages than AC2 under either layout.
"""

from benchmarks.conftest import run_once
from repro.experiments.ablations import run_ablation_signaling


def test_signaling_cost(benchmark, bench_duration):
    output = run_once(
        benchmark, run_ablation_signaling, duration=bench_duration
    )
    print()
    print(output.render())
    rows = {row[0]: row for row in output.tables["signaling"].rows}
    for scheme, row in rows.items():
        logical, mesh_hops, star_hops = row[1], row[2], row[3]
        # Tolerances absorb the x1000 rounding in the hop conversion.
        assert star_hops >= 2 * mesh_hops - 1e-2
        assert mesh_hops >= logical - 1e-2
    assert rows["AC2"][1] > rows["AC3"][1] > 0
    assert rows["AC3"][1] >= rows["AC1"][1]
