"""Figure 8: AC3 keeps P_HD at or below the 1% target across the grid.

Paper shape: for every offered load, voice ratio and mobility level,
P_HD <= ~P_HD,target while P_CB absorbs the overload; the P_CB-P_HD gap
shrinks as the load drops (less bandwidth is reserved when fewer
hand-offs are expected).
"""

from benchmarks.conftest import run_once
from repro.experiments.sweeps import run_fig08_fig09_ac3


def _run(benchmark, duration, loads, high_mobility):
    # Short CI horizons need a warm-up: the paper's own Figure 11 shows
    # P_HD spiking above target while the caches are cold.  Low mobility
    # adapts on a slower timescale (fewer hand-offs per second), so it
    # gets a longer floor.  The recorded full-scale runs (EXPERIMENTS.md)
    # use warmup=0 over 2000 s.
    duration = max(duration, 600.0 if high_mobility else 1200.0)
    fig8, _fig9 = run_once(
        benchmark,
        run_fig08_fig09_ac3,
        loads=loads,
        voice_ratios=(1.0, 0.5),
        high_mobility=high_mobility,
        duration=duration,
        warmup=duration / 3.0,
    )
    print()
    print(fig8.render())
    return fig8


def test_fig08_high_mobility(benchmark, bench_duration, bench_loads):
    fig8 = _run(benchmark, bench_duration, bench_loads, high_mobility=True)
    for ratio in ("1", "0.5"):
        for _load, phd in fig8.series_by_name(f"PHD Rvo={ratio}").points:
            # CI-sized run: allow slack over the 0.01 target.
            assert phd <= 0.02
        pcb = fig8.series_by_name(f"PCB Rvo={ratio}").points
        phd = fig8.series_by_name(f"PHD Rvo={ratio}").points
        # Blocking dominates dropping under overload.
        assert pcb[-1][1] > phd[-1][1]


def test_fig08_low_mobility(benchmark, bench_duration, bench_loads):
    fig8 = _run(benchmark, bench_duration, bench_loads, high_mobility=False)
    for ratio in ("1", "0.5"):
        for _load, phd in fig8.series_by_name(f"PHD Rvo={ratio}").points:
            assert phd <= 0.02
