"""Ablation: unit vs additive vs multiplicative T_est step growth.

The paper (§4.2) reports trying additive (1,2,3,...) and multiplicative
(1,2,4,...) step sizes for consecutive adjustments and finding they
over-react, making the reserved bandwidth fluctuate; unit steps won.
This benchmark measures that fluctuation (std of the sampled T_est).
"""

from benchmarks.conftest import run_once
from repro.experiments.ablations import run_ablation_window_steps


def test_window_step_policies(benchmark, bench_duration):
    # Needs a longer horizon than most benches: the over-reaction only
    # shows once several adjustment bursts have happened.
    output = run_once(
        benchmark,
        run_ablation_window_steps,
        duration=max(bench_duration, 1200.0),
    )
    print()
    print(output.render())
    rows = {row[0]: row for row in output.tables["step policies"].rows}
    assert set(rows) == {"unit", "additive", "multiplicative"}
    # All candidates still bound P_HD (they only differ in efficiency).
    for row in rows.values():
        assert row[2] <= 0.03
    # The multiplicative policy swings T_est at least as hard as unit
    # steps (at full scale it overshoots ~5x; see EXPERIMENTS.md).
    assert rows["multiplicative"][4] >= 0.8 * rows["unit"][4]
