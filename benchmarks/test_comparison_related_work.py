"""Comparison with related work: Naghshineh–Schwartz distributed CAC.

The paper's §6 (and its companion paper [4]) compares against the
distributed admission control of reference [10].  Expected shape:

* with a well-tuned window the NS scheme also bounds drops — but the
  right window must be *given*; there is no adaptation;
* with a mis-tuned (long) window its exponential-departure model
  predicts near-empty cells, admission goes lax and P_HD explodes —
  while AC3, whose window adapts from observed drops, needs no tuning;
* NS evaluates occupancy distributions for the cell and both
  neighbours on every request (O(n·C) convolutions), against AC3's
  ~1–1.5 B_r calculations.
"""

from benchmarks.conftest import run_once
from repro.core.related import NaghshinehSchwartzPolicy
from repro.simulation import CellularSimulator, stationary


def _run_all(duration):
    results = {}
    config = stationary("AC3", offered_load=250.0, voice_ratio=1.0,
                        duration=duration, seed=4)
    results["AC3"] = CellularSimulator(config).run()
    for window in (5.0, 20.0):
        config = stationary("AC3", offered_load=250.0, voice_ratio=1.0,
                            duration=duration, seed=4)
        simulator = CellularSimulator(
            config,
            policy=NaghshinehSchwartzPolicy(window=window, dwell_time=36.0),
        )
        results[f"NS T={window:g}"] = simulator.run()
    return results


def test_ns_comparison(benchmark, bench_duration):
    results = run_once(benchmark, _run_all, min(bench_duration, 300.0))
    print()
    for name, result in results.items():
        print(
            f"{name:<10} P_CB={result.blocking_probability:.3f} "
            f"P_HD={result.dropping_probability:.4f} "
            f"calcs/test={result.average_calculations:.2f}"
        )
    ac3 = results["AC3"]
    tuned = results["NS T=5"]
    mistuned = results["NS T=20"]
    # Both AC3 and well-tuned NS keep drops low.
    assert ac3.dropping_probability <= 0.02
    assert tuned.dropping_probability <= 0.02
    # The mis-tuned window breaks NS but cannot break AC3 (it has no
    # such parameter to mis-tune).
    assert mistuned.dropping_probability > 3 * ac3.dropping_probability
    # NS consults the whole neighbourhood every time.
    assert tuned.average_calculations >= 2.0
