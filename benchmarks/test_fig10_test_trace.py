"""Figure 10: T_est and B_r over time in cells <5> and <6> (L=300, AC3).

Paper shape: T_est fluctuates (every increase coincides with a drop)
rather than settling at an optimum; B_r moves with T_est and with the
neighbour cells' occupancy.
"""

from benchmarks.conftest import run_once
from repro.experiments.traces import run_fig10_fig11, run_trace_experiment


def test_fig10_window_and_reservation_traces(benchmark, bench_duration):
    result = run_once(
        benchmark, run_trace_experiment, duration=max(bench_duration, 300.0)
    )
    fig10, _fig11 = run_fig10_fig11(result=result)
    print()
    print(fig10.render())
    for cell_id in (4, 5):
        t_est_values = [p.value for p in result.t_est_traces[cell_id]]
        assert t_est_values, "expected sampled T_est trace"
        assert all(value >= 1.0 for value in t_est_values)
        # Under heavy load the controller moves off its initial value.
        assert max(t_est_values) > 1.0
        reservation = [p.value for p in result.reservation_traces[cell_id]]
        assert max(reservation) > 0.0
