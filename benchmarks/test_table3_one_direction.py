"""Table 3: one-directional mobiles on an open road, AC1 vs AC3.

Paper shape: cell <1> has no incoming hand-offs (P_HD = 0 there; under
AC1 even P_CB = 0 since it ignores its downstream neighbour); AC1
over-admits upstream and starves alternating downstream cells past the
1% target, while AC3 rebalances and bounds every cell.
"""

from benchmarks.conftest import run_once
from repro.experiments.celltables import run_table3


def test_table3_one_way_flow(benchmark, bench_duration):
    output = run_once(
        benchmark, run_table3, duration=max(bench_duration, 600.0)
    )
    print()
    print(output.render())
    ac1 = output.tables["(AC1)"].rows
    ac3 = output.tables["(AC3)"].rows
    # Cell <1>: no incoming hand-offs under either scheme.
    assert ac1[0][2] == 0.0 and ac3[0][2] == 0.0
    # AC1 admits everything in cell <1> (it never checks cell <2>).
    assert ac1[0][1] <= 0.02
    # Downstream, AC1's worst cell exceeds AC3's worst.
    assert max(row[2] for row in ac1[1:]) >= max(row[2] for row in ac3[1:])
    # AC3 keeps every cell at/near the target.
    assert max(row[2] for row in ac3) <= 0.025
