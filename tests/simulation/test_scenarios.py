"""Unit tests for scenario builders and the sweep runner."""

import pytest

from repro.mobility.models import TravelDirections
from repro.simulation.config import SimulationConfig
from repro.simulation.runner import run_sweep, sweep_offered_load
from repro.simulation.scenarios import (
    one_directional,
    stationary,
    time_varying,
)


class TestStationaryScenario:
    def test_defaults_follow_paper(self):
        config = stationary("AC3", offered_load=150.0)
        assert config.num_cells == 10
        assert config.capacity == 100.0
        assert config.ring
        assert config.t_int is None
        assert config.speed_range == (80.0, 120.0)
        assert config.target_drop_probability == 0.01
        assert config.n_quad == 100
        assert not config.retry_enabled

    def test_low_mobility_range(self):
        config = stationary("AC3", 100.0, high_mobility=False)
        assert config.speed_range == (40.0, 60.0)

    def test_overrides_forwarded(self):
        config = stationary("AC1", 100.0, tracked_cells=(4,), capacity=50.0)
        assert config.tracked_cells == (4,)
        assert config.capacity == 50.0

    def test_label_mentions_setup(self):
        config = stationary("AC2", 250.0, voice_ratio=0.5)
        assert "AC2" in config.label
        assert "250" in config.label


class TestOneDirectionalScenario:
    def test_open_road_one_way(self):
        config = one_directional("AC1")
        assert not config.ring
        assert config.directions is TravelDirections.ONE_WAY
        assert config.offered_load == 300.0


class TestTimeVaryingScenario:
    def test_paper_scale(self):
        config = time_varying("AC3")
        assert config.duration == pytest.approx(2 * 86_400.0)
        assert config.t_int == pytest.approx(3600.0)
        assert config.retry_enabled
        assert config.hourly_stats
        assert config.load_profile is not None
        assert config.speed_profile is not None

    def test_compression_scales_consistently(self):
        config = time_varying("AC3", time_compression=24.0)
        assert config.day_seconds == pytest.approx(3600.0)
        assert config.duration == pytest.approx(7200.0)
        assert config.t_int == pytest.approx(150.0)
        assert config.load_profile.day_seconds == pytest.approx(3600.0)

    def test_compression_below_one_rejected(self):
        with pytest.raises(ValueError):
            time_varying("AC3", time_compression=0.5)


class TestConfigValidation:
    def test_bad_voice_ratio(self):
        with pytest.raises(ValueError):
            SimulationConfig(voice_ratio=2.0)

    def test_bad_speed_range(self):
        with pytest.raises(ValueError):
            SimulationConfig(speed_range=(100.0, 50.0))

    def test_bad_tracked_cell(self):
        with pytest.raises(ValueError):
            SimulationConfig(num_cells=5, tracked_cells=(7,))

    def test_negative_load(self):
        with pytest.raises(ValueError):
            SimulationConfig(offered_load=-1.0)

    def test_too_few_cells(self):
        with pytest.raises(ValueError):
            SimulationConfig(num_cells=1)

    def test_is_time_varying_flag(self):
        assert not SimulationConfig().is_time_varying
        assert time_varying("AC3").is_time_varying


class TestRunner:
    def test_run_sweep_order_preserved(self):
        configs = [
            stationary("static", load, duration=60.0) for load in (60, 120)
        ]
        results = run_sweep(configs)
        assert [r.offered_load for r in results] == [60, 120]

    def test_progress_callback_invoked(self):
        seen = []
        run_sweep(
            [stationary("static", 60.0, duration=60.0)],
            progress=lambda config, result: seen.append(config.offered_load),
        )
        assert seen == [60.0]

    def test_sweep_offered_load_pairs(self):
        pairs = sweep_offered_load(
            lambda load: stationary("static", load, duration=60.0),
            loads=(60.0, 100.0),
        )
        assert [load for load, _result in pairs] == [60.0, 100.0]
        assert all(result.duration == 60.0 for _load, result in pairs)


class TestHotspotWeights:
    def test_weights_are_mean_normalised(self):
        from repro.simulation.scenarios import hotspot_weights

        weights = hotspot_weights(8, 6, ((2, 2, 3.0), (6, 4, 2.0, 1.5)))
        assert len(weights) == 48
        assert abs(sum(weights) / len(weights) - 1.0) < 1e-12
        assert min(weights) > 0

    def test_gain_decays_with_hex_distance(self):
        from repro.simulation.scenarios import hotspot_weights

        weights = hotspot_weights(8, 6, ((3, 3, 5.0),))
        centre = weights[3 * 6 + 3]
        corner = weights[0]
        assert centre > corner

    def test_zero_radius_is_rejected(self):
        import pytest

        from repro.simulation.scenarios import hotspot_weights

        with pytest.raises(ValueError, match="radius"):
            hotspot_weights(4, 4, ((1, 1, 2.0, 0.0),))

    def test_hex_city_stores_weights_in_extra(self):
        from repro.simulation.scenarios import hex_city

        config = hex_city("AC3", rows=4, cols=4, hotspots=((1, 1, 2.0),))
        weights = config.extra["cell_weights"]
        assert len(weights) == 16
        assert abs(sum(weights) / len(weights) - 1.0) < 1e-12

    def test_hex_city_rejects_both_weight_sources(self):
        import pytest

        from repro.simulation.scenarios import hex_city

        with pytest.raises(ValueError, match="not both"):
            hex_city(
                "AC3",
                rows=4,
                cols=4,
                hotspots=((1, 1, 2.0),),
                cell_weights=(1.0,) * 16,
            )

    def test_hex_city_rejects_wrong_weight_length(self):
        import pytest

        from repro.simulation.scenarios import hex_city

        with pytest.raises(ValueError, match="entries"):
            hex_city("AC3", rows=4, cols=4, cell_weights=(1.0,) * 15)

    def test_sequential_simulator_honours_cell_weights(self):
        """The 1-D road simulator gets the same per-cell weighting the
        spatial runner applies (hot cells see more fresh requests)."""
        from repro.simulation.scenarios import stationary
        from repro.simulation.simulator import CellularSimulator

        weights = [0.0, 0.0, 0.0, 0.0, 0.0, 5.0, 5.0, 0.0, 0.0, 0.0]
        mean = sum(weights) / len(weights)
        weights = [w / mean for w in weights]
        config = stationary(
            "AC3",
            offered_load=200.0,
            duration=200.0,
            extra={"cell_weights": tuple(weights)},
        )
        result = CellularSimulator(config).run()
        for cell_id, counters in enumerate(result.cells):
            if weights[cell_id] == 0.0:
                assert counters.new_requests == 0
            else:
                assert counters.new_requests > 0
