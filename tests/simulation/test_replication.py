"""Sharded replication runner: determinism, merging, shm lifecycle."""

from dataclasses import replace

import pytest

from repro.des.random import RandomStreams
from repro.simulation.replication import (
    ReplicatedResult,
    replication_configs,
    replication_seeds,
    run_replicated,
)
from repro.simulation.runner import SweepWorkerError, run_sweep
from repro.simulation.scenarios import stationary
from repro.simulation.shared_state import (
    SharedColumnStore,
    active_segment_names,
)
from repro.simulation.simulator import CellularSimulator


def _config(**overrides):
    defaults = dict(duration=180.0, warmup=20.0, seed=11)
    defaults.update(overrides)
    return stationary("AC3", offered_load=180.0, **defaults)


class TestReplicationConfigs:
    def test_splits_measured_interval(self):
        shards = replication_configs(_config(), 4)
        assert len(shards) == 4
        for shard in shards:
            assert shard.duration == pytest.approx(20.0 + 160.0 / 4)
            assert shard.warmup == 20.0

    def test_seeds_are_spawn_children(self):
        config = _config()
        shards = replication_configs(config, 3)
        expected = [
            RandomStreams(config.seed).spawn(index).seed
            for index in range(3)
        ]
        assert [shard.seed for shard in shards] == expected
        assert replication_seeds(config, 3) == expected

    def test_seeds_distinct_and_deterministic(self):
        config = _config()
        first = replication_seeds(config, 8)
        assert len(set(first)) == 8
        assert config.seed not in first
        assert replication_seeds(config, 8) == first

    def test_labels_carry_shard_index(self):
        shards = replication_configs(_config(), 2)
        assert shards[0].label.endswith("[rep0]")
        assert shards[1].label.endswith("[rep1]")

    def test_zero_replications_rejected(self):
        with pytest.raises(ValueError):
            replication_configs(_config(), 0)


class TestRunReplicated:
    def test_merged_key_independent_of_worker_count(self):
        config = _config()
        sequential = run_replicated(config, replications=4, workers=None)
        two = run_replicated(config, replications=4, workers=2)
        three = run_replicated(config, replications=4, workers=3)
        assert sequential.metrics_key() == two.metrics_key()
        assert sequential.metrics_key() == three.metrics_key()

    def test_pooled_counts_and_cis(self):
        replicated = run_replicated(_config(), replications=4, workers=None)
        assert isinstance(replicated, ReplicatedResult)
        assert replicated.replications == 4
        assert replicated.blocking.trials == sum(
            cell.new_requests
            for result in replicated.results
            for cell in result.cells
        )
        assert replicated.blocking_ci.batches == 4
        assert replicated.blocking_ci.low <= replicated.blocking_ci.mean
        assert replicated.events_processed == sum(
            result.events_processed for result in replicated.results
        )

    def test_share_columns_hydrates_history(self):
        config = _config()
        shared = run_replicated(config, replications=2, workers=None)
        cold = run_replicated(
            config, replications=2, workers=None, share_columns=False
        )
        assert shared.shared_bytes > 0
        assert cold.shared_bytes == 0
        # The shared warm prior is a real input: the shards see it.
        assert shared.metrics_key() != cold.metrics_key()

    def test_merged_telemetry_rides_along(self):
        replicated = run_replicated(
            _config(telemetry=True), replications=2, workers=2
        )
        snapshot = replicated.telemetry
        assert snapshot is not None
        assert snapshot["counters"]["des.events_fired"] == (
            replicated.events_processed
        )
        assert "+" in snapshot["run_id"]


class TestSharedColumnLifecycle:
    def test_no_segments_leak_after_replicated_run(self):
        before = active_segment_names()
        run_replicated(_config(), replications=2, workers=2)
        assert active_segment_names() == before

    def test_store_close_is_idempotent(self):
        config = _config(duration=60.0, warmup=10.0)
        sim = CellularSimulator(config)
        sim.run()
        store = SharedColumnStore.from_network(sim.network, origin=60.0)
        name = store.name
        assert name in active_segment_names()
        store.close()
        store.close()
        assert name not in active_segment_names()
        with pytest.raises(ValueError):
            store.handle()

    def test_context_manager_cleans_up(self):
        sim = CellularSimulator(_config(duration=60.0, warmup=10.0))
        sim.run()
        with SharedColumnStore.from_network(sim.network, origin=60.0) as store:
            name = store.name
            assert name in active_segment_names()
        assert name not in active_segment_names()

    def test_segment_survives_worker_crash_then_owner_cleans_up(self):
        """A crashing worker must not tear the segment down (ownership is
        the parent's), and the parent's close() still reclaims it."""
        warm = CellularSimulator(_config(duration=60.0, warmup=10.0))
        warm.run()
        store = SharedColumnStore.from_network(warm.network, origin=60.0)
        name = store.name
        handle = store.handle()
        good = replace(
            _config(duration=30.0, warmup=5.0, seed=21), warm_state=handle
        )
        bad = replace(good, scheme="bogus", label="boom")
        try:
            with pytest.raises(SweepWorkerError):
                run_sweep([good, bad, good], workers=2)
            # The worker that ran `good` attached and detached; the
            # failing worker died — either way the segment is still ours.
            assert name in active_segment_names()
        finally:
            store.close()
        assert name not in active_segment_names()

    def test_hydrated_shard_matches_inprocess_hydration(self):
        """Worker-side hydration (pickled handle) is bit-identical to
        hydrating in the parent process."""
        warm = CellularSimulator(_config(duration=60.0, warmup=10.0))
        warm.run()
        with SharedColumnStore.from_network(warm.network, origin=60.0) as store:
            shard = replace(
                _config(duration=40.0, warmup=5.0, seed=33),
                warm_state=store.handle(),
            )
            local = CellularSimulator(shard).run()
            (remote,) = run_sweep([shard], workers=2)
        # One config => run_sweep executes in-process; force the pool:
        with SharedColumnStore.from_network(warm.network, origin=60.0) as store:
            shard = replace(
                _config(duration=40.0, warmup=5.0, seed=33),
                warm_state=store.handle(),
            )
            pooled = run_sweep([shard, shard], workers=2)
        assert local.metrics_key() == remote.metrics_key()
        assert pooled[0].metrics_key() == local.metrics_key()
        assert pooled[1].metrics_key() == local.metrics_key()
