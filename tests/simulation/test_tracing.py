"""Tests for the connection tracer extension."""

import json

import pytest

from repro.simulation.scenarios import stationary
from repro.simulation.simulator import CellularSimulator
from repro.simulation.tracing import ConnectionTracer, replay_counts
from repro.traffic.classes import VOICE
from repro.traffic.connection import Connection, ConnectionState


class TestUnit:
    def test_records_lifecycle(self):
        tracer = ConnectionTracer()
        connection = Connection(VOICE, 0.0, cell_id=1)
        tracer.on_admitted(connection, 0.0)
        connection.move_to(2, 30.0)
        tracer.on_handoff(connection, 1, 2, 30.0)
        connection.finish(ConnectionState.COMPLETED, 60.0)
        tracer.on_connection_end(connection, 60.0)
        history = tracer.history(connection.connection_id)
        assert [event.kind for event in history] == [
            "admitted", "handoff", "completed",
        ]
        assert history[1].prev_cell == 1
        assert history[1].cell_id == 2

    def test_capacity_evicts_oldest(self):
        tracer = ConnectionTracer(capacity=2)
        for index in range(4):
            tracer.on_admitted(Connection(VOICE, 0.0, 0), float(index))
        assert len(tracer.events) == 2
        assert tracer.evicted == 2
        assert tracer.events[0].time == 2.0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ConnectionTracer(capacity=0)

    def test_jsonl_roundtrip(self):
        tracer = ConnectionTracer()
        tracer.on_admitted(Connection(VOICE, 0.0, 3), 1.5)
        lines = tracer.to_jsonl().splitlines()
        parsed = json.loads(lines[0])
        assert parsed["kind"] == "admitted"
        assert parsed["cell_id"] == 3

    def test_verify_flags_bad_sequences(self):
        tracer = ConnectionTracer()
        connection = Connection(VOICE, 0.0, 0)
        tracer.on_handoff(connection, 0, 1, 5.0)  # no 'admitted' first
        problems = tracer.verify()
        assert problems and "first event" in problems[0]

    def test_verify_truncated_journal(self):
        tracer = ConnectionTracer(capacity=1)
        tracer.on_admitted(Connection(VOICE, 0.0, 0), 0.0)
        tracer.on_admitted(Connection(VOICE, 0.0, 0), 1.0)
        assert tracer.verify() == [
            "journal truncated: verification unavailable"
        ]

    def test_verify_event_after_terminal(self):
        tracer = ConnectionTracer()
        connection = Connection(VOICE, 0.0, 0)
        tracer.on_admitted(connection, 0.0)
        connection.finish(ConnectionState.COMPLETED, 10.0)
        tracer.on_connection_end(connection, 10.0)
        tracer.on_handoff(connection, 0, 1, 20.0)
        problems = tracer.verify()
        assert problems == [
            f"{connection.connection_id}: event after terminal state"
        ]

    def test_verify_out_of_order_timestamps(self):
        tracer = ConnectionTracer()
        connection = Connection(VOICE, 0.0, 0)
        tracer.on_admitted(connection, 5.0)
        tracer.on_handoff(connection, 0, 1, 2.0)
        problems = tracer.verify()
        assert problems == [
            f"{connection.connection_id}: events out of order"
        ]

    def test_history_index_tracks_eviction(self):
        tracer = ConnectionTracer(capacity=3)
        first = Connection(VOICE, 0.0, 0)
        second = Connection(VOICE, 0.0, 0)
        tracer.on_admitted(first, 0.0)
        tracer.on_admitted(second, 1.0)
        tracer.on_handoff(second, 0, 1, 2.0)
        tracer.on_handoff(second, 1, 2, 3.0)  # evicts first's only event
        assert tracer.history(first.connection_id) == []
        assert first.connection_id not in tracer.connections_seen()
        assert [
            event.time for event in tracer.history(second.connection_id)
        ] == [1.0, 2.0, 3.0]

    def test_history_matches_scan(self):
        tracer = ConnectionTracer()
        connections = [Connection(VOICE, 0.0, 0) for _ in range(3)]
        for step, connection in enumerate(connections * 2):
            tracer.on_admitted(connection, float(step))
        for connection in connections:
            scanned = [
                event for event in tracer.events
                if event.connection_id == connection.connection_id
            ]
            assert tracer.history(connection.connection_id) == scanned

    def test_write_jsonl_utf8(self, tmp_path):
        tracer = ConnectionTracer()
        tracer.on_admitted(Connection(VOICE, 0.0, 3), 1.5)
        path = tmp_path / "journal.jsonl"
        tracer.write_jsonl(path)
        lines = path.read_text(encoding="utf-8").splitlines()
        assert json.loads(lines[0])["cell_id"] == 3

    def test_replay_counts(self):
        tracer = ConnectionTracer()
        connection = Connection(VOICE, 0.0, 0)
        tracer.on_admitted(connection, 0.0)
        tracer.on_handoff(connection, 0, 1, 1.0)
        tracer.on_handoff(connection, 1, 2, 2.0)
        assert replay_counts(tracer.events) == {
            "admitted": 1, "handoff": 2,
        }


class TestEndToEnd:
    def test_journal_matches_metrics(self):
        tracer = ConnectionTracer()
        config = stationary(
            "AC3", offered_load=150.0, duration=300.0, seed=7
        )
        simulator = CellularSimulator(config, extensions=[tracer])
        result = simulator.run()
        assert tracer.verify() == []
        counts = replay_counts(tracer.events)
        admitted = result.total_new_requests - sum(
            cell.blocked for cell in result.cells
        )
        assert counts["admitted"] == admitted
        successful_handoffs = sum(
            cell.handoff_attempts - cell.handoff_drops
            for cell in result.cells
        )
        assert counts.get("handoff", 0) == successful_handoffs
        assert counts.get("dropped", 0) == sum(
            cell.handoff_drops for cell in result.cells
        )
        assert counts.get("completed", 0) == sum(
            cell.completed for cell in result.cells
        )
        # Unterminated = still active at the horizon.
        unterminated = (
            counts["admitted"]
            - counts.get("dropped", 0)
            - counts.get("completed", 0)
            - counts.get("exited", 0)
        )
        assert unterminated == len(simulator.active_connections)
