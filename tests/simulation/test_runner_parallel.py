"""Parallel sweep runner: process-pool results equal the sequential run."""

from repro.simulation.runner import run_sweep, sweep_offered_load
from repro.simulation.scenarios import stationary


def _configs(loads=(60.0, 150.0), duration=150.0):
    return [
        stationary(
            "AC3",
            offered_load=load,
            voice_ratio=0.8,
            high_mobility=True,
            duration=duration,
            seed=8,
        )
        for load in loads
    ]


def test_parallel_matches_sequential_in_order():
    configs = _configs()
    sequential = run_sweep(configs)
    parallel = run_sweep(configs, workers=4)
    assert len(parallel) == len(sequential) == len(configs)
    for seq, par in zip(sequential, parallel):
        assert par.metrics_key() == seq.metrics_key()
    # Order is the input order, not completion order.
    assert [r.offered_load for r in parallel] == [
        c.offered_load for c in configs
    ]


def test_parallel_progress_fires_in_order():
    configs = _configs()
    seen = []
    run_sweep(
        configs,
        progress=lambda config, result: seen.append(config.offered_load),
        workers=2,
    )
    assert seen == [config.offered_load for config in configs]


def test_workers_one_runs_in_process():
    configs = _configs(loads=(60.0,))
    assert (
        run_sweep(configs, workers=1)[0].metrics_key()
        == run_sweep(configs)[0].metrics_key()
    )


def test_sweep_offered_load_accepts_workers():
    loads = (60.0, 150.0)
    sequential = sweep_offered_load(
        lambda load: _configs(loads=(load,))[0], loads=loads
    )
    parallel = sweep_offered_load(
        lambda load: _configs(loads=(load,))[0], loads=loads, workers=2
    )
    for (load_s, res_s), (load_p, res_p) in zip(sequential, parallel):
        assert load_s == load_p
        assert res_s.metrics_key() == res_p.metrics_key()
