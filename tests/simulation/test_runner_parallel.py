"""Parallel sweep runner: process-pool results equal the sequential run."""

from dataclasses import replace

import pytest

from repro.simulation.runner import (
    SweepWorkerError,
    run_sweep,
    shared_pool,
    sweep_offered_load,
)
from repro.simulation.scenarios import stationary


def _configs(loads=(60.0, 150.0), duration=150.0):
    return [
        stationary(
            "AC3",
            offered_load=load,
            voice_ratio=0.8,
            high_mobility=True,
            duration=duration,
            seed=8,
        )
        for load in loads
    ]


def test_parallel_matches_sequential_in_order():
    configs = _configs()
    sequential = run_sweep(configs)
    parallel = run_sweep(configs, workers=4)
    assert len(parallel) == len(sequential) == len(configs)
    for seq, par in zip(sequential, parallel):
        assert par.metrics_key() == seq.metrics_key()
    # Order is the input order, not completion order.
    assert [r.offered_load for r in parallel] == [
        c.offered_load for c in configs
    ]


def test_parallel_progress_fires_in_order():
    configs = _configs()
    seen = []
    run_sweep(
        configs,
        progress=lambda config, result: seen.append(config.offered_load),
        workers=2,
    )
    assert seen == [config.offered_load for config in configs]


def test_workers_one_runs_in_process():
    configs = _configs(loads=(60.0,))
    assert (
        run_sweep(configs, workers=1)[0].metrics_key()
        == run_sweep(configs)[0].metrics_key()
    )


def test_worker_failure_surfaces_remote_traceback():
    good, other = _configs(duration=60.0)
    bad = replace(good, scheme="bogus", label="boom")
    with pytest.raises(SweepWorkerError) as excinfo:
        run_sweep([good, bad, other], workers=2)
    error = excinfo.value
    assert error.config.label == "boom"
    assert "unknown admission scheme" in error.remote_traceback
    assert "unknown admission scheme" in str(error)


def test_pool_survives_worker_failure():
    good, other = _configs(duration=60.0)
    bad = replace(good, scheme="bogus", label="boom")
    pool = shared_pool(2)
    with pytest.raises(SweepWorkerError):
        run_sweep([bad, good], workers=2, pool=pool)
    # An ordinary remote exception must not poison the shared pool.
    results = run_sweep([good, other], workers=2, pool=pool)
    assert [r.metrics_key() for r in results] == [
        r.metrics_key() for r in run_sweep([good, other])
    ]


def test_sweep_offered_load_accepts_workers():
    loads = (60.0, 150.0)
    sequential = sweep_offered_load(
        lambda load: _configs(loads=(load,))[0], loads=loads
    )
    parallel = sweep_offered_load(
        lambda load: _configs(loads=(load,))[0], loads=loads, workers=2
    )
    for (load_s, res_s), (load_p, res_p) in zip(sequential, parallel):
        assert load_s == load_p
        assert res_s.metrics_key() == res_p.metrics_key()
