"""Coalesced estimation tick: bit-identity and batching effect."""

from dataclasses import replace

import pytest

from repro.simulation.scenarios import stationary
from repro.simulation.simulator import CellularSimulator


def _run(scheme, coalesced, **overrides):
    config = stationary(
        scheme,
        offered_load=overrides.pop("offered_load", 200.0),
        duration=overrides.pop("duration", 150.0),
        seed=overrides.pop("seed", 11),
        **overrides,
    )
    simulator = CellularSimulator(replace(config, coalesced_tick=coalesced))
    return simulator, simulator.run()


def _eq4_stats(simulator):
    rows = batches = 0
    for station in simulator.network.stations:
        estimator = station.estimator
        rows += getattr(estimator, "eq4_vector_rows", 0)
        rows += getattr(estimator, "eq4_scalar_rows", 0)
        batches += getattr(estimator, "eq4_vector_batches", 0)
        batches += getattr(estimator, "eq4_scalar_batches", 0)
    return rows, batches


class TestBitIdentity:
    @pytest.mark.parametrize("scheme", ["AC1", "AC2", "AC3", "static"])
    def test_metrics_key_parity(self, scheme):
        _, sequential = _run(scheme, coalesced=False)
        _, coalesced = _run(scheme, coalesced=True)
        assert sequential.metrics_key() == coalesced.metrics_key()

    @pytest.mark.parametrize("scheme", ["AC2", "AC3"])
    def test_metrics_key_parity_python_kernel(self, scheme):
        _, sequential = _run(scheme, coalesced=False, kernel="python")
        _, coalesced = _run(scheme, coalesced=True, kernel="python")
        assert sequential.metrics_key() == coalesced.metrics_key()

    def test_parity_includes_messages_and_calculations(self):
        sim_off, sequential = _run("AC2", coalesced=False)
        sim_on, coalesced = _run("AC2", coalesced=True)
        assert (
            sequential.average_messages == coalesced.average_messages
        )
        assert (
            sequential.average_calculations
            == coalesced.average_calculations
        )
        assert sim_off.network.total_messages() == (
            sim_on.network.total_messages()
        )


class TestBatching:
    def test_mean_eq4_batch_size_rises(self):
        # AC2 refreshes every neighbour + self per admission test, so
        # the tick hands each supplier several targets at once.
        sim_off, _ = _run("AC2", coalesced=False, duration=200.0, seed=3)
        sim_on, _ = _run("AC2", coalesced=True, duration=200.0, seed=3)
        rows_off, batches_off = _eq4_stats(sim_off)
        rows_on, batches_on = _eq4_stats(sim_on)
        assert rows_on == rows_off  # same probabilities evaluated...
        assert batches_on < batches_off  # ...in fewer, larger batches
        assert rows_on / batches_on > rows_off / batches_off

    def test_tick_counters_track_flushes(self):
        sim_on, _ = _run("AC2", coalesced=True)
        assert sim_on.network.tick_flushes > 0
        # AC2 in a ring marks 2 neighbours + self per admission test.
        assert sim_on.network.tick_targets == 3 * sim_on.network.tick_flushes

    def test_sequential_network_never_ticks(self):
        sim_off, _ = _run("AC2", coalesced=False)
        assert sim_off.network.tick_flushes == 0
        assert sim_off.network.tick_targets == 0

    def test_telemetry_records_tick_counters(self):
        sim_on, result = _run("AC3", coalesced=True, telemetry=True)
        counters = result.telemetry["counters"]
        assert counters["cellular.tick_flushes"] == (
            sim_on.network.tick_flushes
        )
        assert counters["cellular.tick_targets"] == (
            sim_on.network.tick_targets
        )
