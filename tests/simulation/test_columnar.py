"""Columnar connection store: allocation, recycling, handles."""

import pytest

from repro.simulation.columnar import (
    BANDWIDTH_TABLE,
    ConnectionStore,
    handle_class,
)


class TestAllocFree:
    def test_alloc_returns_distinct_rows(self):
        store = ConnectionStore(num_cells=10, capacity=4)
        rows = [store.alloc() for _ in range(4)]
        assert sorted(rows) == [0, 1, 2, 3]
        assert store.live == 4

    def test_free_recycles_rows(self):
        store = ConnectionStore(num_cells=10, capacity=4)
        first = store.alloc()
        store.alloc()
        store.free(first)
        assert store.live == 1
        assert store.alloc() == first

    def test_growth_preserves_contents(self):
        store = ConnectionStore(num_cells=10, capacity=2)
        rows = [store.alloc() for _ in range(2)]
        store.columns["cell"][rows[0]] = 7
        store.columns["entry_time"][rows[1]] = 3.5
        for _ in range(10):
            store.alloc()
        assert store.capacity >= 12
        assert int(store.columns["cell"][rows[0]]) == 7
        assert float(store.columns["entry_time"][rows[1]]) == 3.5
        assert store.live == 12

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            ConnectionStore(num_cells=10, capacity=0)
        with pytest.raises(ValueError):
            ConnectionStore(num_cells=0)


class TestSerialGuard:
    def test_serials_are_unique_and_monotone(self):
        store = ConnectionStore(num_cells=10)
        row_a, row_b = store.alloc(), store.alloc()
        assert 0 < store.serial_of(row_a) < store.serial_of(row_b)

    def test_recycled_row_gets_fresh_serial(self):
        """A stale reference (row, old_serial) must be detectable after
        the row is freed and recycled — the migration ghost guard."""
        store = ConnectionStore(num_cells=10)
        row = store.alloc()
        stale = store.serial_of(row)
        store.free(row)
        assert store.serial_of(row) == 0
        assert store.alloc() == row
        assert store.serial_of(row) != stale


class TestConnectionSemantics:
    def test_connection_id_is_birth_coordinates(self):
        store = ConnectionStore(num_cells=36)
        row = store.alloc()
        store.columns["birth_cell"][row] = 11
        store.columns["birth_seq"][row] = 4
        assert store.connection_id(row) == 4 * 36 + 11

    def test_bandwidth_table(self):
        store = ConnectionStore(num_cells=10)
        row = store.alloc()
        store.columns["bw_code"][row] = 0
        assert store.bandwidth(row) == BANDWIDTH_TABLE[0] == 1.0
        store.columns["bw_code"][row] = 1
        assert store.bandwidth(row) == BANDWIDTH_TABLE[1] == 4.0


class TestHandle:
    def _store_with_row(self):
        store = ConnectionStore(num_cells=36)
        row = store.alloc()
        store.columns["entry_time"][row] = 12.5
        store.columns["cell"][row] = 3
        store.columns["prev"][row] = -1
        store.columns["birth_cell"][row] = 3
        store.columns["birth_seq"][row] = 2
        store.columns["bw_code"][row] = 1
        return store, row

    def test_handle_exposes_admission_attributes(self):
        store, row = self._store_with_row()
        handle = handle_class(store)(row)
        assert handle.connection_id == 2 * 36 + 3
        assert handle.bandwidth == 4.0
        assert handle.full_bandwidth == 4.0
        assert handle.min_bandwidth == 4.0
        assert handle.reservation_basis == 4.0
        assert handle.prev_cell is None
        assert handle.cell_entry_time == 12.5

    def test_prev_cell_maps_negative_to_none(self):
        store, row = self._store_with_row()
        handle = handle_class(store)(row)
        store.columns["prev"][row] = 17
        assert handle.prev_cell == 17
        store.columns["prev"][row] = -1
        assert handle.prev_cell is None

    def test_handle_is_one_slot(self):
        store, row = self._store_with_row()
        handle = handle_class(store)(row)
        assert not hasattr(handle, "__dict__")
        with pytest.raises(AttributeError):
            handle.other = 1

    def test_handles_share_the_class_level_store(self):
        store, row = self._store_with_row()
        cls = handle_class(store)
        assert cls.store is store
        assert cls(row).store is cls(row).store

    def test_nbytes_counts_all_columns(self):
        store = ConnectionStore(num_cells=10, capacity=64)
        # 2 f8 + 5 i4 + 3 i1 data columns plus the i8 serial column.
        assert store.nbytes == 64 * (2 * 8 + 5 * 4 + 3 * 1 + 8)


class TestScalarHotBacking:
    def test_connection_store_uses_stdlib_arrays(self):
        """The DES hot loop is scalar row-at-a-time access, where
        ``array.array`` indexing avoids numpy's per-element boxing; the
        store must keep that backing even with numpy installed."""
        import array

        store = ConnectionStore(num_cells=4, capacity=8)
        assert ConnectionStore.SCALAR_HOT
        for column in store.columns.values():
            assert isinstance(column, array.array)
        assert isinstance(store.serial, array.array)

    def test_growth_preserves_backing_and_contents(self):
        import array

        store = ConnectionStore(num_cells=4, capacity=2)
        rows = [store.alloc() for _ in range(5)]
        for index, row in enumerate(rows):
            store.columns["birth_seq"][row] = index
        assert store.capacity >= 5
        for column in store.columns.values():
            assert isinstance(column, array.array)
        for index, row in enumerate(rows):
            assert store.columns["birth_seq"][row] == index

    def test_scalar_reads_return_native_types(self):
        store = ConnectionStore(num_cells=4, capacity=4)
        row = store.alloc()
        store.columns["entry_time"][row] = 1.5
        store.columns["cell"][row] = 3
        assert type(store.columns["entry_time"][row]) is float
        assert type(store.columns["cell"][row]) is int


def _columnar_cell(capacity=10.0, num_cells=6):
    from repro.simulation.columnar import ColumnarCell

    store = ConnectionStore(num_cells=num_cells, capacity=8)
    cell = ColumnarCell(0, capacity, store)
    return store, cell


def _fill_row(store, row, *, cell=0, prev=-1, birth_cell=0, birth_seq=0,
              entry_time=0.0, bw_code=0):
    columns = store.columns
    columns["entry_time"][row] = entry_time
    columns["end_time"][row] = entry_time + 100.0
    columns["cell"][row] = cell
    columns["prev"][row] = prev
    columns["birth_cell"][row] = birth_cell
    columns["birth_seq"][row] = birth_seq
    columns["hops"][row] = 0
    columns["bw_code"][row] = bw_code
    columns["pop"][row] = 0
    columns["heading"][row] = 0
    return row


class TestColumnarCell:
    def test_attach_detach_round_trip_accounting(self):
        store, cell = _columnar_cell()
        row = _fill_row(store, store.alloc(), bw_code=1)
        cell.attach_row(row)
        assert cell.used_bandwidth == BANDWIDTH_TABLE[1]
        assert cell.connection_count == 1
        version = cell.version
        cell.detach_row(row)
        assert cell.used_bandwidth == 0.0
        assert cell.connection_count == 0
        assert cell.version > version

    def test_groups_bucket_by_prev_cell(self):
        store, cell = _columnar_cell()
        born_here = _fill_row(store, store.alloc(), prev=-1, birth_seq=0)
        handed_off = _fill_row(
            store, store.alloc(), prev=3, birth_seq=1, entry_time=5.0
        )
        cell.attach_row(born_here)
        cell.attach_row(handed_off)
        assert set(cell._by_prev) == {None, 3}
        cell.detach_row(handed_off)
        assert set(cell._by_prev) == {None}

    def test_double_attach_raises(self):
        from repro.cellular.cell import CapacityError

        store, cell = _columnar_cell()
        row = _fill_row(store, store.alloc())
        cell.attach_row(row)
        with pytest.raises(CapacityError):
            cell.attach_row(row)

    def test_detach_of_unknown_row_raises(self):
        from repro.cellular.cell import CapacityError

        store, cell = _columnar_cell()
        row = _fill_row(store, store.alloc())
        with pytest.raises(CapacityError):
            cell.detach_row(row)

    def test_attach_past_handoff_capacity_raises(self):
        from repro.cellular.cell import CapacityError

        store, cell = _columnar_cell(capacity=1.0)
        first = _fill_row(store, store.alloc(), birth_seq=0)
        second = _fill_row(store, store.alloc(), birth_seq=1, bw_code=1)
        cell.attach_row(first)
        with pytest.raises(CapacityError):
            cell.attach_row(second)

    def test_object_attach_api_is_rejected(self):
        store, cell = _columnar_cell()
        with pytest.raises(TypeError):
            cell.attach(object())
        with pytest.raises(TypeError):
            cell.detach(object())

    def test_connections_materialises_handles_in_attach_order(self):
        store, cell = _columnar_cell()
        rows = [
            _fill_row(store, store.alloc(), birth_seq=index)
            for index in range(3)
        ]
        for row in rows:
            cell.attach_row(row)
        handles = cell.connections()
        assert [handle.row for handle in handles] == rows
        assert [handle.connection_id for handle in handles] == [
            store.connection_id(row) for row in rows
        ]
