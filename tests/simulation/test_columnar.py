"""Columnar connection store: allocation, recycling, handles."""

import pytest

from repro.simulation.columnar import (
    BANDWIDTH_TABLE,
    ConnectionStore,
    handle_class,
)


class TestAllocFree:
    def test_alloc_returns_distinct_rows(self):
        store = ConnectionStore(num_cells=10, capacity=4)
        rows = [store.alloc() for _ in range(4)]
        assert sorted(rows) == [0, 1, 2, 3]
        assert store.live == 4

    def test_free_recycles_rows(self):
        store = ConnectionStore(num_cells=10, capacity=4)
        first = store.alloc()
        store.alloc()
        store.free(first)
        assert store.live == 1
        assert store.alloc() == first

    def test_growth_preserves_contents(self):
        store = ConnectionStore(num_cells=10, capacity=2)
        rows = [store.alloc() for _ in range(2)]
        store.columns["cell"][rows[0]] = 7
        store.columns["entry_time"][rows[1]] = 3.5
        for _ in range(10):
            store.alloc()
        assert store.capacity >= 12
        assert int(store.columns["cell"][rows[0]]) == 7
        assert float(store.columns["entry_time"][rows[1]]) == 3.5
        assert store.live == 12

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            ConnectionStore(num_cells=10, capacity=0)
        with pytest.raises(ValueError):
            ConnectionStore(num_cells=0)


class TestSerialGuard:
    def test_serials_are_unique_and_monotone(self):
        store = ConnectionStore(num_cells=10)
        row_a, row_b = store.alloc(), store.alloc()
        assert 0 < store.serial_of(row_a) < store.serial_of(row_b)

    def test_recycled_row_gets_fresh_serial(self):
        """A stale reference (row, old_serial) must be detectable after
        the row is freed and recycled — the migration ghost guard."""
        store = ConnectionStore(num_cells=10)
        row = store.alloc()
        stale = store.serial_of(row)
        store.free(row)
        assert store.serial_of(row) == 0
        assert store.alloc() == row
        assert store.serial_of(row) != stale


class TestConnectionSemantics:
    def test_connection_id_is_birth_coordinates(self):
        store = ConnectionStore(num_cells=36)
        row = store.alloc()
        store.columns["birth_cell"][row] = 11
        store.columns["birth_seq"][row] = 4
        assert store.connection_id(row) == 4 * 36 + 11

    def test_bandwidth_table(self):
        store = ConnectionStore(num_cells=10)
        row = store.alloc()
        store.columns["bw_code"][row] = 0
        assert store.bandwidth(row) == BANDWIDTH_TABLE[0] == 1.0
        store.columns["bw_code"][row] = 1
        assert store.bandwidth(row) == BANDWIDTH_TABLE[1] == 4.0


class TestHandle:
    def _store_with_row(self):
        store = ConnectionStore(num_cells=36)
        row = store.alloc()
        store.columns["entry_time"][row] = 12.5
        store.columns["cell"][row] = 3
        store.columns["prev"][row] = -1
        store.columns["birth_cell"][row] = 3
        store.columns["birth_seq"][row] = 2
        store.columns["bw_code"][row] = 1
        return store, row

    def test_handle_exposes_admission_attributes(self):
        store, row = self._store_with_row()
        handle = handle_class(store)(row)
        assert handle.connection_id == 2 * 36 + 3
        assert handle.bandwidth == 4.0
        assert handle.full_bandwidth == 4.0
        assert handle.min_bandwidth == 4.0
        assert handle.reservation_basis == 4.0
        assert handle.prev_cell is None
        assert handle.cell_entry_time == 12.5

    def test_prev_cell_maps_negative_to_none(self):
        store, row = self._store_with_row()
        handle = handle_class(store)(row)
        store.columns["prev"][row] = 17
        assert handle.prev_cell == 17
        store.columns["prev"][row] = -1
        assert handle.prev_cell is None

    def test_handle_is_one_slot(self):
        store, row = self._store_with_row()
        handle = handle_class(store)(row)
        assert not hasattr(handle, "__dict__")
        with pytest.raises(AttributeError):
            handle.other = 1

    def test_handles_share_the_class_level_store(self):
        store, row = self._store_with_row()
        cls = handle_class(store)
        assert cls.store is store
        assert cls(row).store is cls(row).store

    def test_nbytes_counts_all_columns(self):
        store = ConnectionStore(num_cells=10, capacity=64)
        # 2 f8 + 5 i4 + 3 i1 data columns plus the i8 serial column.
        assert store.nbytes == 64 * (2 * 8 + 5 * 4 + 3 * 1 + 8)
