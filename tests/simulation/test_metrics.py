"""Unit tests for metrics collection and result aggregation."""

import pytest

from repro.simulation.metrics import (
    CellCounters,
    HourlyBucket,
    MetricsCollector,
    SimulationResult,
)


def make_collector(**kwargs):
    defaults = {"num_cells": 3}
    defaults.update(kwargs)
    return MetricsCollector(**defaults)


class TestCounters:
    def test_blocking_probability(self):
        counters = CellCounters(new_requests=10, blocked=3)
        assert counters.blocking_probability == 0.3

    def test_dropping_probability(self):
        counters = CellCounters(handoff_attempts=100, handoff_drops=2)
        assert counters.dropping_probability == 0.02

    def test_zero_denominators(self):
        counters = CellCounters()
        assert counters.blocking_probability == 0.0
        assert counters.dropping_probability == 0.0


class TestRecording:
    def test_requests_counted_per_cell(self):
        collector = make_collector()
        collector.record_request(0, 10.0, blocked=False)
        collector.record_request(0, 11.0, blocked=True)
        collector.record_request(2, 12.0, blocked=False)
        assert collector.cells[0].new_requests == 2
        assert collector.cells[0].blocked == 1
        assert collector.cells[2].new_requests == 1
        assert collector.cells[1].new_requests == 0

    def test_warmup_excludes_counters(self):
        collector = make_collector(warmup=100.0)
        collector.record_request(0, 50.0, blocked=True)
        collector.record_handoff(0, 50.0, dropped=True)
        assert collector.cells[0].new_requests == 0
        assert collector.cells[0].handoff_attempts == 0
        collector.record_request(0, 150.0, blocked=True)
        assert collector.cells[0].new_requests == 1

    def test_admission_test_totals(self):
        collector = make_collector()
        collector.record_admission_test(1, 4)
        collector.record_admission_test(3, 12)
        assert collector.total_admission_tests == 2
        assert collector.average_calculations() == 2.0
        assert collector.average_messages() == 8.0

    def test_averages_zero_without_tests(self):
        collector = make_collector()
        assert collector.average_calculations() == 0.0
        assert collector.average_messages() == 0.0


class TestHourly:
    def test_buckets_by_hour(self):
        collector = make_collector(hourly=True)
        collector.record_request(0, 100.0, blocked=False)
        collector.record_request(0, 3700.0, blocked=True)
        collector.record_handoff(1, 3800.0, dropped=False)
        buckets = collector.hourly_buckets()
        assert [bucket.hour for bucket in buckets] == [0, 1]
        assert buckets[1].blocked == 1
        assert buckets[1].handoff_attempts == 1

    def test_custom_hour_seconds(self):
        collector = make_collector(hourly=True, hour_seconds=60.0)
        collector.record_request(0, 59.0, blocked=False)
        collector.record_request(0, 61.0, blocked=False)
        assert [b.hour for b in collector.hourly_buckets()] == [0, 1]

    def test_hourly_includes_warmup_period(self):
        # Hourly buckets are timelines, not steady-state stats.
        collector = make_collector(hourly=True, warmup=7200.0)
        collector.record_request(0, 100.0, blocked=True)
        assert collector.hourly_buckets()[0].blocked == 1

    def test_disabled_by_default(self):
        collector = make_collector()
        collector.record_request(0, 100.0, blocked=False)
        assert collector.hourly_buckets() == []

    def test_bucket_probabilities(self):
        bucket = HourlyBucket(0, new_requests=4, blocked=1,
                              handoff_attempts=10, handoff_drops=5)
        assert bucket.blocking_probability == 0.25
        assert bucket.dropping_probability == 0.5
        assert HourlyBucket(0).blocking_probability == 0.0


class TestTraces:
    def test_phd_trace_cumulative_from_zero(self):
        collector = make_collector(tracked_cells=(1,), warmup=1000.0)
        collector.record_handoff(1, 10.0, dropped=True)
        collector.record_handoff(1, 20.0, dropped=False)
        trace = collector.phd_traces[1]
        assert [point.value for point in trace] == [1.0, 0.5]
        # Warmup applies to counters, not traces.
        assert collector.cells[1].handoff_attempts == 0

    def test_untracked_cells_not_traced(self):
        collector = make_collector(tracked_cells=(1,))
        collector.record_handoff(0, 10.0, dropped=False)
        assert collector.phd_traces == {1: []}

    def test_sample_records_tracked_traces(self):
        collector = make_collector(tracked_cells=(0,))
        collector.sample_cell(0, 10.0, reservation=5.0, used=50.0, t_est=3.0)
        assert collector.t_est_traces[0][0].value == 3.0
        assert collector.reservation_traces[0][0].value == 5.0

    def test_sample_averages_post_warmup_only(self):
        collector = make_collector(warmup=100.0)
        collector.sample_cell(0, 50.0, 10.0, 90.0, 1.0)
        collector.sample_cell(0, 150.0, 20.0, 80.0, 1.0)
        assert collector.average_reservation() == 20.0
        assert collector.average_used() == 80.0


class TestResult:
    def make_result(self, cells):
        return SimulationResult(
            label="x",
            scheme="AC3",
            offered_load=100.0,
            duration=1000.0,
            warmup=0.0,
            num_cells=len(cells),
            cells=cells,
            statuses=[],
            average_reservation=0.0,
            average_used=0.0,
            average_calculations=1.0,
            average_messages=2.0,
            total_admission_tests=10,
        )

    def test_aggregate_probabilities(self):
        cells = [
            CellCounters(new_requests=10, blocked=2, handoff_attempts=50,
                         handoff_drops=1),
            CellCounters(new_requests=30, blocked=2, handoff_attempts=150,
                         handoff_drops=3),
        ]
        result = self.make_result(cells)
        assert result.blocking_probability == pytest.approx(4 / 40)
        assert result.dropping_probability == pytest.approx(4 / 200)
        assert result.total_handoff_attempts == 200
        assert result.total_new_requests == 40

    def test_empty_network_probabilities(self):
        result = self.make_result([CellCounters()])
        assert result.blocking_probability == 0.0
        assert result.dropping_probability == 0.0

    def test_actual_offered_load(self):
        cells = [CellCounters(new_requests=500), CellCounters(new_requests=500)]
        result = self.make_result(cells)
        # 1000 requests / 1000 s / 2 cells * 1 BU * 120 s = 60 BU.
        assert result.actual_offered_load(1.0) == pytest.approx(60.0)
