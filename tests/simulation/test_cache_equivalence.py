"""Whole-run equivalence: batched reservation never changes a metric.

Runs the acceptance scenarios — the Figure 7 static policy and the
Figure 10/11 AC3 trace run — once with the batched columnar
reservation path and once with the naive per-connection rescan, and
requires every simulation-determined field of the results (counters,
probabilities, traces, N_calc, messages) to be identical.  Only
wall-clock time may differ.
"""

from dataclasses import replace

from repro.simulation.scenarios import stationary
from repro.simulation.simulator import CellularSimulator
from repro.traffic.connection import reset_connection_ids


def _run_both(config):
    reset_connection_ids()
    cached = CellularSimulator(
        replace(config, reservation_cache=True)
    ).run()
    reset_connection_ids()
    naive = CellularSimulator(
        replace(config, reservation_cache=False)
    ).run()
    return cached, naive


def test_fig07_static_scenario_is_identical():
    config = stationary(
        "static",
        offered_load=200.0,
        voice_ratio=0.8,
        high_mobility=True,
        duration=300.0,
        seed=7,
        static_guard=10.0,
    )
    cached, naive = _run_both(config)
    assert cached.metrics_key() == naive.metrics_key()


def test_fig11_trace_scenario_is_identical():
    # The Figure 10/11 run: AC3, L=300, stationary traffic, cells <5>
    # and <6> tracked — this is the scheme that actually exercises the
    # Eq. 5/6 reservation path on every admission test and hand-off.
    config = stationary(
        "AC3",
        offered_load=300.0,
        voice_ratio=1.0,
        high_mobility=True,
        duration=300.0,
        seed=10,
        tracked_cells=(4, 5),
    )
    cached, naive = _run_both(config)
    assert cached.metrics_key() == naive.metrics_key()
    # Sanity: the scenario is busy enough that the assertion is not
    # vacuous, and the batched run actually exercised the hot path.
    assert cached.total_handoff_attempts > 0
    assert cached.average_calculations > 0
