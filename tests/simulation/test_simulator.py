"""Integration tests: the full simulator against its invariants."""

import pytest

from repro.cellular.topology import HexTopology
from repro.mobility.models import HexMobilityModel
from repro.simulation.config import SimulationConfig
from repro.simulation.scenarios import one_directional, stationary
from repro.simulation.simulator import CellularSimulator, simulate
from repro.traffic.connection import ConnectionState


def run(config):
    return CellularSimulator(config).run()


def short(scheme="AC3", load=100.0, duration=120.0, seed=1, **kw):
    return stationary(
        scheme, offered_load=load, duration=duration, seed=seed, **kw
    )


class TestConservation:
    def test_request_accounting(self):
        simulator = CellularSimulator(short(duration=200.0))
        result = simulator.run()
        requests = sum(c.new_requests for c in result.cells)
        blocked = sum(c.blocked for c in result.cells)
        completed = sum(c.completed for c in result.cells)
        attempts = sum(c.handoff_attempts for c in result.cells)
        drops = sum(c.handoff_drops for c in result.cells)
        in_flight = len(simulator.active_connections)
        assert requests > 0
        # Every admitted request ends exactly one way (or is in flight).
        admitted = requests - blocked
        assert admitted == completed + drops + in_flight
        assert drops <= attempts

    def test_bandwidth_never_exceeds_capacity(self):
        simulator = CellularSimulator(short(load=300.0, duration=150.0))
        simulator.run()
        for cell in simulator.network.cells:
            assert 0.0 <= cell.used_bandwidth <= cell.capacity + 1e-9

    def test_used_bandwidth_matches_active_connections(self):
        simulator = CellularSimulator(short(duration=150.0))
        simulator.run()
        for cell in simulator.network.cells:
            total = sum(c.bandwidth for c in cell.connections())
            assert cell.used_bandwidth == pytest.approx(total)

    def test_active_connections_are_attached_exactly_once(self):
        simulator = CellularSimulator(short(duration=150.0))
        simulator.run()
        seen = {}
        for cell in simulator.network.cells:
            for connection in cell.connections():
                assert connection.connection_id not in seen
                seen[connection.connection_id] = cell.cell_id
                assert connection.cell_id == cell.cell_id
        assert set(seen) == set(simulator.active_connections)

    def test_quadruplets_match_successful_and_dropped_departures(self):
        simulator = CellularSimulator(short(duration=200.0))
        result = simulator.run()
        attempts = sum(c.handoff_attempts for c in result.cells)
        exits = sum(c.exited for c in result.cells)
        recorded = sum(
            station.estimator.cache.total_recorded
            for station in simulator.network.stations
        )
        # Every boundary crossing (hand-off attempt or exit) produced
        # exactly one quadruplet at the departed cell.
        assert recorded == attempts + exits


class TestDeterminism:
    def test_same_seed_same_result(self):
        first = run(short(seed=11))
        second = run(short(seed=11))
        assert first.blocking_probability == second.blocking_probability
        assert first.dropping_probability == second.dropping_probability
        assert first.events_processed == second.events_processed

    def test_different_seed_different_result(self):
        first = run(short(seed=11, duration=200.0))
        second = run(short(seed=12, duration=200.0))
        assert first.events_processed != second.events_processed


class TestSchemeBehaviour:
    def test_ac3_holds_drop_target_under_overload(self):
        result = run(short("AC3", load=300.0, duration=600.0, seed=5))
        assert result.dropping_probability <= 0.015
        assert result.blocking_probability > 0.3

    def test_static_guard_blocks_more_when_larger(self):
        small = run(short("static", load=200.0, duration=300.0,
                          static_guard=5.0))
        large = run(short("static", load=200.0, duration=300.0,
                          static_guard=30.0))
        assert large.blocking_probability > small.blocking_probability
        assert large.dropping_probability <= small.dropping_probability

    def test_ncalc_ordering_ac1_ac3_ac2(self):
        results = {
            scheme: run(short(scheme, load=250.0, duration=300.0, seed=9))
            for scheme in ("AC1", "AC2", "AC3")
        }
        assert results["AC1"].average_calculations == pytest.approx(1.0)
        assert results["AC2"].average_calculations == pytest.approx(3.0)
        assert (
            1.0
            <= results["AC3"].average_calculations
            <= results["AC2"].average_calculations
        )

    def test_ac3_ncalc_is_one_at_low_load(self):
        result = run(short("AC3", load=60.0, duration=300.0))
        assert result.average_calculations == pytest.approx(1.0, abs=0.05)

    def test_zero_load_produces_nothing(self):
        result = run(short(load=0.0))
        assert result.total_new_requests == 0
        assert result.blocking_probability == 0.0


class TestOneDirectional:
    def test_first_cell_never_sees_handoffs(self):
        result = run(one_directional("AC1", duration=300.0))
        assert result.cells[0].handoff_attempts == 0
        assert result.cells[0].dropping_probability == 0.0

    def test_exits_recorded_at_last_cell(self):
        result = run(one_directional("AC3", duration=300.0))
        assert result.cells[-1].exited > 0
        assert all(cell.exited == 0 for cell in result.cells[:-1])

    def test_downstream_cells_see_handoffs(self):
        result = run(one_directional("AC3", duration=300.0))
        assert result.cells[4].handoff_attempts > 0


class TestTraces:
    def test_tracked_cells_recorded(self):
        config = short(duration=200.0, tracked_cells=(4, 5))
        result = run(config)
        assert set(result.t_est_traces) == {4, 5}
        assert len(result.t_est_traces[4]) > 0
        assert len(result.reservation_traces[5]) > 0

    def test_phd_trace_is_cumulative_ratio(self):
        config = short(load=300.0, duration=300.0, tracked_cells=(4,))
        result = run(config)
        trace = result.phd_traces[4]
        assert trace, "expected hand-offs into cell 4"
        assert all(0.0 <= point.value <= 1.0 for point in trace)
        times = [point.time for point in trace]
        assert times == sorted(times)

    def test_sampling_disabled(self):
        config = short(duration=100.0, sample_interval=0.0)
        result = run(config)
        assert result.average_reservation == 0.0
        assert result.average_used == 0.0


class TestWarmup:
    def test_warmup_excludes_early_events(self):
        with_warmup = run(short(duration=300.0, warmup=150.0, seed=3))
        without = run(short(duration=300.0, warmup=0.0, seed=3))
        assert (
            with_warmup.total_new_requests < without.total_new_requests
        )

    def test_warmup_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(duration=100.0, warmup=100.0)


class TestLifecycle:
    def test_simulator_single_use(self):
        simulator = CellularSimulator(short(duration=50.0))
        simulator.run()
        with pytest.raises(RuntimeError):
            simulator.run()

    def test_simulate_helper(self):
        result = simulate(short(duration=50.0))
        assert result.duration == 50.0

    def test_no_active_connection_in_terminal_state(self):
        simulator = CellularSimulator(short(duration=200.0))
        simulator.run()
        for connection in simulator.active_connections.values():
            assert connection.state is ConnectionState.ACTIVE


class TestHexIntegration:
    def test_runs_on_hex_topology(self):
        topology = HexTopology(4, 4, wrap=True)
        config = short("AC3", load=80.0, duration=300.0)
        simulator = CellularSimulator(
            config, mobility_model=HexMobilityModel(topology)
        )
        result = simulator.run()
        assert result.num_cells == 16
        assert result.total_new_requests > 0
        attempts = sum(c.handoff_attempts for c in result.cells)
        assert attempts > 0
        for cell in simulator.network.cells:
            assert 0.0 <= cell.used_bandwidth <= cell.capacity + 1e-9
