"""Tests for the CDMA §7 extensions: soft capacity and soft hand-off."""

from dataclasses import replace

import pytest

from repro.cellular.cell import Cell
from repro.simulation.config import SimulationConfig
from repro.simulation.scenarios import stationary
from repro.simulation.simulator import CellularSimulator
from repro.traffic.classes import VOICE
from repro.traffic.connection import Connection


class TestSoftCapacityCell:
    def test_handoff_capacity_above_nominal(self):
        cell = Cell(0, 100.0, handoff_overload=1.1)
        assert cell.handoff_capacity == pytest.approx(110.0)

    def test_handoffs_may_use_overload_margin(self):
        cell = Cell(0, 10.0, handoff_overload=1.2)
        for _ in range(10):
            cell.attach(Connection(VOICE, 0.0, 0))
        assert cell.fits_handoff(2.0)
        assert not cell.fits_handoff(3.0)
        assert not cell.fits_new_connection(1.0)

    def test_default_overload_is_hard_capacity(self):
        cell = Cell(0, 10.0)
        assert cell.handoff_capacity == 10.0

    def test_invalid_overload_rejected(self):
        with pytest.raises(ValueError):
            Cell(0, 10.0, handoff_overload=0.9)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(handoff_overload=0.5)
        with pytest.raises(ValueError):
            SimulationConfig(soft_handoff_window=-1.0)
        with pytest.raises(ValueError):
            SimulationConfig(soft_handoff_retry_interval=0.0)


def overloaded(seed=3, **overrides):
    base = stationary(
        "static",
        offered_load=250.0,
        voice_ratio=0.5,
        duration=400.0,
        warmup=100.0,
        seed=seed,
    )
    return replace(base, **overrides) if overrides else base


class TestSoftCapacityEndToEnd:
    def test_overload_margin_reduces_drops(self):
        hard = CellularSimulator(overloaded()).run()
        soft = CellularSimulator(
            overloaded(handoff_overload=1.1)
        ).run()
        assert soft.dropping_probability < hard.dropping_probability

    def test_usage_may_exceed_nominal_but_not_overload(self):
        simulator = CellularSimulator(overloaded(handoff_overload=1.1))
        simulator.run()
        for cell in simulator.network.cells:
            assert cell.used_bandwidth <= cell.handoff_capacity + 1e-9


class TestSoftHandoffEndToEnd:
    def test_window_reduces_drops(self):
        hard = CellularSimulator(overloaded()).run()
        soft = CellularSimulator(
            overloaded(soft_handoff_window=5.0)
        ).run()
        assert soft.dropping_probability < hard.dropping_probability

    def test_conservation_with_retries(self):
        # warmup=0: conservation is only exact when counting from t=0.
        simulator = CellularSimulator(
            overloaded(soft_handoff_window=5.0, warmup=0.0)
        )
        result = simulator.run()
        requests = sum(c.new_requests for c in result.cells)
        blocked = sum(c.blocked for c in result.cells)
        completed = sum(c.completed for c in result.cells)
        drops = sum(c.handoff_drops for c in result.cells)
        in_flight = len(simulator.active_connections)
        assert requests - blocked == completed + drops + in_flight
        for cell in simulator.network.cells:
            total = sum(c.bandwidth for c in cell.connections())
            assert cell.used_bandwidth == pytest.approx(total)

    def test_quadruplets_recorded_once_per_resolution(self):
        simulator = CellularSimulator(
            overloaded(soft_handoff_window=5.0, warmup=0.0)
        )
        result = simulator.run()
        attempts = sum(c.handoff_attempts for c in result.cells)
        exits = sum(c.exited for c in result.cells)
        recorded = sum(
            station.estimator.cache.total_recorded
            for station in simulator.network.stations
        )
        # Retried crossings must not double-record quadruplets.
        assert recorded == attempts + exits

    def test_lifetime_end_cancels_pending_soft_retry(self):
        # A connection whose lifetime expires mid-window must terminate
        # cleanly (no resurrection by the pending retry event).
        simulator = CellularSimulator(
            overloaded(soft_handoff_window=30.0, seed=8)
        )
        simulator.run()
        for connection in simulator.active_connections.values():
            assert connection.is_active

    def test_combined_mechanisms_compound(self):
        hard = CellularSimulator(overloaded()).run()
        both = CellularSimulator(
            overloaded(handoff_overload=1.1, soft_handoff_window=5.0)
        ).run()
        assert both.dropping_probability < hard.dropping_probability / 2
