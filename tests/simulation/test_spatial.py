"""Spatial sharding: shard-count invariance, hosts, campaigns."""

import pytest

from repro.simulation.scenarios import hex_city
from repro.simulation.spatial import (
    load_spatial_checkpoint,
    run_spatial,
    run_spatial_campaign,
)


def _city(scheme="AC3", **overrides):
    options = {
        "rows": 6,
        "cols": 6,
        "offered_load": 150.0,
        "voice_ratio": 0.8,
        "duration": 60.0,
        "seed": 11,
    }
    options.update(overrides)
    return hex_city(scheme, **options)


class TestShardInvariance:
    def test_ac3_metrics_identical_for_1_2_4_shards(self):
        keys = []
        for shards in (1, 2, 4):
            result = run_spatial(_city(), shards, processes=False)
            keys.append(result.metrics_key())
        assert keys[0] == keys[1] == keys[2]

    def test_run_exercises_handoffs_and_blocking(self):
        result = run_spatial(
            _city(offered_load=700.0), 2, processes=False
        )
        assert sum(cell.handoff_attempts for cell in result.cells) > 0
        assert result.blocking_probability > 0.0
        assert result.events_processed > 0

    def test_static_scheme_identical_across_shards(self):
        config = _city("static", offered_load=700.0, static_guard=8.0)
        one = run_spatial(config, 1, processes=False)
        three = run_spatial(config, 3, processes=False)
        assert one.metrics_key() == three.metrics_key()
        assert one.scheme == "static"

    def test_process_hosts_match_inline_hosts(self):
        config = _city(duration=40.0)
        inline = run_spatial(config, 2, processes=False)
        forked = run_spatial(config, 2, processes=True)
        assert inline.metrics_key() == forked.metrics_key()

    def test_shard_events_cover_total_but_stay_out_of_the_key(self):
        result = run_spatial(_city(duration=40.0), 2, processes=False)
        assert result.shard_events is not None
        assert len(result.shard_events) == 2
        assert sum(result.shard_events) <= result.events_processed
        assert "shard_events" not in result.metrics_key()


class TestPlanInvariance:
    """Merged metrics are identical for every plan kind and shard count."""

    def _tall_city(self, **overrides):
        return _city(rows=8, cols=6, duration=40.0, **overrides)

    @pytest.mark.parametrize("kind", ["rows", "load", "tiles"])
    def test_uniform_city_invariant_up_to_8_shards(self, kind):
        reference = run_spatial(self._tall_city(), 1, processes=False)
        for shards in (2, 4, 8):
            result = run_spatial(
                self._tall_city(), shards, processes=False, plan_kind=kind
            )
            assert result.metrics_key() == reference.metrics_key(), (
                f"kind={kind} shards={shards} diverged"
            )

    @pytest.mark.parametrize("kind", ["rows", "load", "tiles"])
    def test_hotspot_city_invariant_across_kinds(self, kind):
        hotspots = ((2, 2, 3.0), (6, 4, 2.0, 1.5))
        reference = run_spatial(
            self._tall_city(hotspots=hotspots), 1, processes=False
        )
        result = run_spatial(
            self._tall_city(hotspots=hotspots),
            4,
            processes=False,
            plan_kind=kind,
        )
        assert result.metrics_key() == reference.metrics_key()

    def test_scenario_default_plan_comes_from_extra(self):
        config = self._tall_city()
        config.extra["shard_plan"] = "tiles"
        explicit = run_spatial(
            self._tall_city(), 4, processes=False, plan_kind="tiles"
        )
        defaulted = run_spatial(config, 4, processes=False)
        assert defaulted.metrics_key() == explicit.metrics_key()

    def test_weighted_arrivals_shift_load_toward_hotspots(self):
        hotspots = ((2, 2, 6.0, 1.5),)
        result = run_spatial(
            self._tall_city(hotspots=hotspots), 1, processes=False
        )
        from repro.cellular.topology import HexTopology

        topology = HexTopology(8, 6, wrap=True)
        hot_cell = topology.cell_id(2, 2)
        hot = result.cells[hot_cell].new_requests
        far_cell = topology.cell_id(6, 5)
        far = result.cells[far_cell].new_requests
        assert hot > far


class TestValidation:
    def test_rejects_adaptive_qos(self):
        config = _city(adaptive_qos=True)
        with pytest.raises(ValueError, match="adaptive"):
            run_spatial(config, 2, processes=False)

    def test_rejects_non_hex_config(self):
        from repro.simulation.scenarios import stationary

        with pytest.raises(ValueError, match="hex"):
            run_spatial(
                stationary("AC3", offered_load=150.0), 2, processes=False
            )

    def test_rejects_epoch_beyond_min_notice(self):
        with pytest.raises(ValueError, match="epoch"):
            run_spatial(_city(), 2, processes=False, epoch=2.0)

    def test_rejects_more_shards_than_rows(self):
        with pytest.raises(ValueError, match="bands"):
            run_spatial(_city(), 7, processes=False)


class TestCampaign:
    def _run(self, tmp_path, shards, name):
        return run_spatial_campaign(
            _city(duration=40.0),
            shards,
            days=2,
            state_dir=tmp_path / name,
            processes=False,
        )

    def test_two_day_campaign_is_shard_invariant(self, tmp_path):
        one = self._run(tmp_path, 1, "one")
        two = self._run(tmp_path, 2, "two")
        for day_one, day_two in zip(one, two):
            assert day_one.seed == day_two.seed
            assert (
                day_one.blocking_probability == day_two.blocking_probability
            )
            assert (
                day_one.dropping_probability == day_two.dropping_probability
            )
            assert day_one.events == day_two.events
            assert day_one.quadruplets == day_two.quadruplets

    def test_day_two_warm_starts_from_day_one(self, tmp_path):
        reports = self._run(tmp_path, 2, "warm")
        assert len(reports) == 2
        # Day 2 starts from day 1's history, so its checkpoint can only
        # deepen the quadruplet pool (capped runs could plateau, never
        # restart from zero).
        assert reports[1].quadruplets >= reports[0].quadruplets > 0
        assert (tmp_path / "warm" / "day-001").is_dir()

    def test_corrupted_checkpoint_is_rejected(self, tmp_path):
        self._run(tmp_path, 2, "corrupt")
        day_dir = tmp_path / "corrupt" / "day-000"
        shard_files = sorted(day_dir.glob("shard-*.json"))
        assert shard_files
        victim = shard_files[0]
        victim.write_text(victim.read_text().replace('"', "'", 1))
        with pytest.raises(ValueError, match="corrupt"):
            load_spatial_checkpoint(day_dir)
