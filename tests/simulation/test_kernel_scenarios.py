"""End-to-end kernel equivalence: AC3 runs under numpy vs pure Python.

The estimation kernels must not change simulation outcomes — Eq. 4/5
are evaluated with IEEE-identical operations either way, so a whole
AC3 scenario produces the same event sequence and the same metrics.
"""

import pytest

from repro import _kernel
from repro.simulation.scenarios import stationary
from repro.simulation.simulator import CellularSimulator

requires_numpy = pytest.mark.skipif(
    not _kernel.HAS_NUMPY, reason="numpy kernel not installed"
)


def _run_ac3(kernel: str):
    saved = _kernel._active
    _kernel._active = None
    try:
        config = stationary(
            "AC3",
            offered_load=200.0,
            voice_ratio=0.8,
            high_mobility=True,
            duration=150.0,
            seed=3,
            kernel=kernel,
        )
        return CellularSimulator(config).run()
    finally:
        _kernel._active = saved


@requires_numpy
def test_ac3_metrics_equivalent_across_kernels():
    vectorized = _run_ac3("numpy")
    fallback = _run_ac3("python")
    assert vectorized.events_processed == fallback.events_processed
    assert abs(
        vectorized.blocking_probability - fallback.blocking_probability
    ) <= 1e-9
    assert abs(
        vectorized.dropping_probability - fallback.dropping_probability
    ) <= 1e-9
    assert vectorized.metrics_key() == fallback.metrics_key()


def test_config_rejects_unknown_kernel():
    with pytest.raises(ValueError):
        stationary("AC3", offered_load=100.0, kernel="fortran")


@requires_numpy
def test_auto_kernel_resolves_to_numpy_when_available():
    saved = _kernel._active
    _kernel._active = None
    try:
        assert _kernel.set_kernel("auto") == "numpy"
    finally:
        _kernel._active = saved
