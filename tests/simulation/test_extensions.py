"""Tests for the simulator extension hooks."""

import pytest

from repro.simulation.extensions import ExtensionChain
from repro.simulation.scenarios import stationary
from repro.simulation.simulator import CellularSimulator


class Recorder:
    """Extension capturing every hook invocation."""

    def __init__(self, veto_new=False, veto_handoff=False):
        self.veto_new = veto_new
        self.veto_handoff = veto_handoff
        self.calls = []

    def install(self, network):
        self.calls.append(("install", network.num_cells))

    def admit_new(self, connection, cell_id, now):
        self.calls.append(("admit_new", cell_id))
        return not self.veto_new

    def on_admitted(self, connection, now):
        self.calls.append(("on_admitted", connection.connection_id))

    def admit_handoff(self, connection, old_cell, new_cell, now):
        self.calls.append(("admit_handoff", old_cell, new_cell))
        return not self.veto_handoff

    def on_handoff(self, connection, old_cell, new_cell, now):
        self.calls.append(("on_handoff", old_cell, new_cell))

    def on_connection_end(self, connection, now):
        self.calls.append(("end", connection.state.value))

    def count(self, kind):
        return sum(1 for call in self.calls if call[0] == kind)


class TestChain:
    def test_empty_chain_is_falsy_and_permissive(self):
        chain = ExtensionChain()
        assert not chain
        assert chain.admit_new(None, 0, 0.0)
        assert chain.admit_handoff(None, 0, 1, 0.0)

    def test_any_veto_wins(self):
        chain = ExtensionChain([Recorder(), Recorder(veto_new=True)])
        assert not chain.admit_new(None, 0, 0.0)

    def test_partial_extensions_allowed(self):
        class OnlyEnd:
            def on_connection_end(self, connection, now):
                self.seen = True

        chain = ExtensionChain([OnlyEnd()])
        assert chain.admit_new(None, 0, 0.0)  # missing hook = permissive
        chain.install(None)  # missing install = no-op


class TestSimulatorIntegration:
    def run(self, extension, duration=150.0, load=150.0):
        config = stationary("AC3", offered_load=load, duration=duration,
                            seed=3)
        simulator = CellularSimulator(config, extensions=[extension])
        return simulator, simulator.run()

    def test_hooks_fire_in_plausible_volumes(self):
        recorder = Recorder()
        simulator, result = self.run(recorder)
        admitted = result.total_new_requests - sum(
            cell.blocked for cell in result.cells
        )
        assert recorder.count("install") == 1
        assert recorder.count("admit_new") == admitted  # only on accepts
        assert recorder.count("on_admitted") == admitted
        successes = sum(
            cell.handoff_attempts - cell.handoff_drops
            for cell in result.cells
        )
        assert recorder.count("on_handoff") == successes
        assert recorder.count("admit_handoff") >= successes

    def test_new_veto_blocks_everything(self):
        recorder = Recorder(veto_new=True)
        _simulator, result = self.run(recorder)
        assert result.blocking_probability == 1.0
        assert recorder.count("on_admitted") == 0
        assert result.total_handoff_attempts == 0

    def test_handoff_veto_drops_all_handoffs(self):
        recorder = Recorder(veto_handoff=True)
        _simulator, result = self.run(recorder)
        assert result.total_handoff_attempts > 0
        assert result.dropping_probability == pytest.approx(1.0)
        # Every admitted connection still terminates exactly once.
        ends = recorder.count("end")
        admitted = recorder.count("on_admitted")
        active = recorder.count("on_admitted") - ends
        assert active >= 0

    def test_veto_drop_feeds_window_controller(self):
        recorder = Recorder(veto_handoff=True)
        simulator, _result = self.run(recorder, duration=100.0)
        drops = sum(
            station.window.total_drops
            for station in simulator.network.stations
        )
        assert drops == sum(
            cell.handoff_drops for cell in simulator.metrics.cells
        )
        assert drops > 0
