"""Unit tests for the generator-process layer."""

import pytest

from repro.des import Engine
from repro.des.process import ProcessRunner, Timeout, Waitable


def make():
    engine = Engine()
    return engine, ProcessRunner(engine)


def test_timeout_advances_clock():
    engine, runner = make()
    log = []

    def worker():
        yield Timeout(2.0)
        log.append(engine.now)
        yield Timeout(3.0)
        log.append(engine.now)

    runner.start(worker())
    engine.run()
    assert log == [2.0, 5.0]


def test_negative_timeout_rejected():
    with pytest.raises(ValueError):
        Timeout(-1.0)


def test_zero_timeout_allowed():
    engine, runner = make()
    log = []

    def worker():
        yield Timeout(0.0)
        log.append(engine.now)

    runner.start(worker())
    engine.run()
    assert log == [0.0]


def test_process_return_value_on_done():
    engine, runner = make()

    def worker():
        yield Timeout(1.0)
        return 42

    process = runner.start(worker())
    engine.run()
    assert process.done.triggered
    assert process.done.value == 42
    assert not process.alive


def test_waitable_resumes_waiters():
    engine, runner = make()
    log = []
    condition = Waitable(engine)

    def waiter():
        value = yield condition
        log.append((engine.now, value))

    def trigger():
        yield Timeout(5.0)
        condition.succeed("ready")

    runner.start(waiter())
    runner.start(trigger())
    engine.run()
    assert log == [(5.0, "ready")]


def test_waitable_multiple_waiters():
    engine, runner = make()
    log = []
    condition = Waitable(engine)

    def waiter(name):
        yield condition
        log.append(name)

    runner.start(waiter("a"))
    runner.start(waiter("b"))
    engine.call_at(1.0, condition.succeed)
    engine.run()
    assert sorted(log) == ["a", "b"]


def test_waiting_on_already_triggered_waitable():
    engine, runner = make()
    condition = Waitable(engine)
    condition.succeed("early")
    log = []

    def waiter():
        value = yield condition
        log.append(value)

    runner.start(waiter())
    engine.run()
    assert log == ["early"]


def test_double_trigger_raises():
    engine = Engine()
    condition = Waitable(engine)
    condition.succeed()
    with pytest.raises(RuntimeError):
        condition.succeed()


def test_process_waits_on_process():
    engine, runner = make()
    log = []

    def child():
        yield Timeout(3.0)
        return "child-result"

    def parent():
        result = yield runner.start(child())
        log.append((engine.now, result))

    runner.start(parent())
    engine.run()
    assert log == [(3.0, "child-result")]


def test_interrupt_stops_process():
    engine, runner = make()
    log = []

    def worker():
        yield Timeout(1.0)
        log.append("should not happen")

    process = runner.start(worker())
    process.interrupt()
    engine.run()
    assert log == []
    assert not process.alive


def test_yielding_garbage_raises():
    engine, runner = make()

    def worker():
        yield "nonsense"

    runner.start(worker())
    with pytest.raises(TypeError):
        engine.run()


def test_start_all():
    engine, runner = make()
    log = []

    def worker(name):
        yield Timeout(1.0)
        log.append(name)

    processes = runner.start_all(worker(name) for name in ("x", "y", "z"))
    engine.run()
    assert len(processes) == 3
    assert sorted(log) == ["x", "y", "z"]
