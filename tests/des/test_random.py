"""Unit tests for named random streams."""

import pytest

from repro.des.random import RandomStreams, exponential


def test_streams_are_memoised():
    streams = RandomStreams(seed=1)
    assert streams.get("a") is streams.get("a")


def test_same_seed_same_sequence():
    first = RandomStreams(seed=7).get("arrivals")
    second = RandomStreams(seed=7).get("arrivals")
    assert [first.random() for _ in range(5)] == [
        second.random() for _ in range(5)
    ]


def test_different_names_different_sequences():
    streams = RandomStreams(seed=7)
    a = [streams.get("a").random() for _ in range(5)]
    b = [streams.get("b").random() for _ in range(5)]
    assert a != b


def test_stream_independent_of_creation_order():
    forward = RandomStreams(seed=3)
    forward.get("x")
    x_then_y = [forward.get("y").random() for _ in range(3)]
    backward = RandomStreams(seed=3)
    y_only = [backward.get("y").random() for _ in range(3)]
    assert x_then_y == y_only


def test_spawn_produces_distinct_children():
    parent = RandomStreams(seed=9)
    child_a = parent.spawn(0).get("s")
    child_b = parent.spawn(1).get("s")
    assert [child_a.random() for _ in range(3)] != [
        child_b.random() for _ in range(3)
    ]


def test_spawn_is_deterministic():
    assert (
        RandomStreams(seed=9).spawn(4).seed
        == RandomStreams(seed=9).spawn(4).seed
    )


def test_names_lists_created_streams():
    streams = RandomStreams()
    streams.get("one")
    streams.get("two")
    assert sorted(streams.names()) == ["one", "two"]


def test_exponential_positive():
    streams = RandomStreams(seed=5)
    rng = streams.get("exp")
    draws = [exponential(rng, 10.0) for _ in range(100)]
    assert all(draw > 0 for draw in draws)


def test_exponential_mean_roughly_right():
    rng = RandomStreams(seed=5).get("exp")
    draws = [exponential(rng, 10.0) for _ in range(20_000)]
    mean = sum(draws) / len(draws)
    assert 9.0 < mean < 11.0


def test_exponential_rejects_nonpositive_mean():
    rng = RandomStreams(seed=5).get("exp")
    with pytest.raises(ValueError):
        exponential(rng, 0.0)
    with pytest.raises(ValueError):
        exponential(rng, -1.0)


def test_stream_seed_stable_across_processes():
    """Stream derivation must not depend on Python's salted hash()."""
    import subprocess
    import sys

    code = (
        "from repro.des.random import RandomStreams;"
        "print(RandomStreams(seed=7).get('arrivals').random())"
    )
    outputs = {
        subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        for _ in range(2)
    }
    assert len(outputs) == 1
    local = RandomStreams(seed=7).get("arrivals").random()
    assert outputs == {repr(local)}
