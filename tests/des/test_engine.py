"""Unit tests for the discrete-event engine."""

import pytest

from repro.des import Engine, EventPriority, SimulationError


def test_starts_at_zero():
    assert Engine().now == 0.0


def test_custom_start_time():
    assert Engine(start_time=5.0).now == 5.0


def test_call_at_fires_in_time_order():
    engine = Engine()
    fired = []
    engine.call_at(3.0, lambda: fired.append(3.0))
    engine.call_at(1.0, lambda: fired.append(1.0))
    engine.call_at(2.0, lambda: fired.append(2.0))
    engine.run()
    assert fired == [1.0, 2.0, 3.0]


def test_clock_advances_to_event_times():
    engine = Engine()
    seen = []
    engine.call_at(1.5, lambda: seen.append(engine.now))
    engine.call_at(4.25, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [1.5, 4.25]


def test_call_in_is_relative():
    engine = Engine(start_time=10.0)
    seen = []
    engine.call_in(2.0, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [12.0]


def test_call_at_in_past_raises():
    engine = Engine(start_time=5.0)
    with pytest.raises(SimulationError):
        engine.call_at(4.0, lambda: None)


def test_negative_delay_raises():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.call_in(-1.0, lambda: None)


def test_same_time_priority_order():
    engine = Engine()
    fired = []
    engine.call_at(
        1.0, lambda: fired.append("arrival"), priority=EventPriority.ARRIVAL
    )
    engine.call_at(
        1.0, lambda: fired.append("departure"),
        priority=EventPriority.DEPARTURE,
    )
    engine.run()
    assert fired == ["departure", "arrival"]


def test_same_time_same_priority_fifo():
    engine = Engine()
    fired = []
    for index in range(5):
        engine.call_at(1.0, fired.append, index)
    engine.run()
    assert fired == [0, 1, 2, 3, 4]


def test_cancelled_event_does_not_fire():
    engine = Engine()
    fired = []
    event = engine.call_at(1.0, lambda: fired.append("no"))
    event.cancel()
    engine.run()
    assert fired == []


def test_cancel_is_idempotent():
    engine = Engine()
    event = engine.call_at(1.0, lambda: None)
    event.cancel()
    event.cancel()
    engine.run()


def test_run_until_leaves_later_events():
    engine = Engine()
    fired = []
    engine.call_at(1.0, lambda: fired.append(1))
    engine.call_at(5.0, lambda: fired.append(5))
    engine.run(until=3.0)
    assert fired == [1]
    assert engine.now == 3.0
    assert engine.pending == 1


def test_run_until_then_resume():
    engine = Engine()
    fired = []
    engine.call_at(1.0, lambda: fired.append(1))
    engine.call_at(5.0, lambda: fired.append(5))
    engine.run(until=3.0)
    engine.run()
    assert fired == [1, 5]


def test_event_exactly_at_until_fires():
    engine = Engine()
    fired = []
    engine.call_at(3.0, lambda: fired.append(3))
    engine.run(until=3.0)
    assert fired == [3]


def test_stop_halts_run():
    engine = Engine()
    fired = []
    engine.call_at(1.0, lambda: (fired.append(1), engine.stop()))
    engine.call_at(2.0, lambda: fired.append(2))
    engine.run()
    assert fired == [1]


def test_max_events_budget():
    engine = Engine()
    fired = []
    for index in range(10):
        engine.call_at(float(index + 1), fired.append, index)
    engine.run(max_events=3)
    assert fired == [0, 1, 2]


def test_events_scheduled_during_run_fire():
    engine = Engine()
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 3:
            engine.call_in(1.0, chain, depth + 1)

    engine.call_at(1.0, chain, 0)
    engine.run()
    assert fired == [0, 1, 2, 3]
    assert engine.now == 4.0


def test_events_processed_counter():
    engine = Engine()
    for index in range(4):
        engine.call_at(float(index + 1), lambda: None)
    engine.run()
    assert engine.events_processed == 4


def test_peek_skips_cancelled():
    engine = Engine()
    first = engine.call_at(1.0, lambda: None)
    engine.call_at(2.0, lambda: None)
    first.cancel()
    assert engine.peek() == 2.0


def test_peek_empty_returns_none():
    assert Engine().peek() is None


def test_step_returns_false_when_drained():
    engine = Engine()
    assert engine.step() is False


def test_step_fires_one_event():
    engine = Engine()
    fired = []
    engine.call_at(1.0, lambda: fired.append(1))
    engine.call_at(2.0, lambda: fired.append(2))
    assert engine.step() is True
    assert fired == [1]


def test_run_not_reentrant():
    engine = Engine()
    errors = []

    def nested():
        try:
            engine.run()
        except SimulationError as exc:
            errors.append(exc)

    engine.call_at(1.0, nested)
    engine.run()
    assert len(errors) == 1


def test_run_until_advances_clock_even_without_events():
    engine = Engine()
    engine.run(until=7.5)
    assert engine.now == 7.5


def test_callback_arguments_passed():
    engine = Engine()
    seen = []
    engine.call_at(1.0, lambda a, b: seen.append((a, b)), "x", 2)
    engine.run()
    assert seen == [("x", 2)]


def test_pending_excludes_cancelled_events():
    engine = Engine()
    keep = engine.call_at(1.0, lambda: None)
    drop = engine.call_at(2.0, lambda: None)
    drop.cancel()
    assert engine.pending == 1
    keep.cancel()
    assert engine.pending == 0


def test_mass_cancellation_compacts_the_heap():
    engine = Engine()
    events = [
        engine.call_at(1000.0 + index, lambda: None)
        for index in range(2000)
    ]
    for event in events:
        event.cancel()
    assert engine.pending == 0
    # Lazy deletion alone would keep all 2000 corpses until t=1000;
    # compaction must have physically shrunk the queue.
    assert len(engine._queue) < len(events)
    engine.run()
    assert engine.events_processed == 0


def test_compaction_preserves_live_events():
    engine = Engine()
    fired = []
    for index in range(1500):
        event = engine.call_at(10.0 + index, lambda: None)
        event.cancel()
    engine.call_at(5.0, lambda: fired.append("early"))
    engine.call_at(2000.0, lambda: fired.append("late"))
    assert engine.pending == 2
    engine.run()
    assert fired == ["early", "late"]


def test_cancel_after_fire_does_not_corrupt_pending():
    engine = Engine()
    event = engine.call_at(1.0, lambda: None)
    engine.call_at(2.0, lambda: None)
    engine.run(until=1.5)
    event.cancel()  # already fired: must not count as a dead heap entry
    assert engine.pending == 1
    engine.run()
    assert engine.pending == 0


def test_fired_events_are_recycled_through_the_pool():
    engine = Engine()
    first = engine.call_at(1.0, lambda: None)
    engine.run()
    # The fired instance went to the free list and backs the next event.
    second = engine.call_at(2.0, lambda: None)
    assert second is first
    assert not second.cancelled


def test_recycled_events_fire_with_fresh_state():
    engine = Engine()
    fired = []
    for index in range(5):
        engine.call_at(float(index + 1), fired.append, index)
        engine.run()
    assert fired == [0, 1, 2, 3, 4]


def test_cancel_of_fired_event_is_still_a_noop_after_recycling():
    engine = Engine()
    event = engine.call_at(1.0, lambda: None)
    engine.run()
    event.cancel()  # pooled instance: marked cancelled, no hook, no count
    assert engine.pending == 0
    follow_up = []
    engine.call_at(2.0, lambda: follow_up.append(True))
    engine.run()
    assert follow_up == [True]


def test_event_pool_is_bounded():
    from repro.des.engine import _POOL_MAX

    engine = Engine()
    for index in range(2 * _POOL_MAX):
        engine.call_at(float(index), lambda: None)
    engine.run()
    assert len(engine._pool) <= _POOL_MAX
