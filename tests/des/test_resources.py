"""Unit tests for the DES queueing primitives."""

import pytest

from repro.des import Engine
from repro.des.process import ProcessRunner, Timeout
from repro.des.resources import Container, Resource, Store


def make():
    engine = Engine()
    return engine, ProcessRunner(engine)


class TestResource:
    def test_grants_up_to_capacity_immediately(self):
        engine = Engine()
        resource = Resource(engine, capacity=2)
        assert resource.request().triggered
        assert resource.request().triggered
        assert not resource.request().triggered
        assert resource.queue_length == 1
        assert resource.available == 0

    def test_release_hands_to_waiter_fifo(self):
        engine, runner = make()
        resource = Resource(engine, capacity=1)
        order = []

        def worker(name, hold):
            yield resource.request()
            order.append(("start", name, engine.now))
            yield Timeout(hold)
            resource.release()

        runner.start(worker("a", 5.0))
        runner.start(worker("b", 5.0))
        runner.start(worker("c", 5.0))
        engine.run()
        assert [entry[1] for entry in order] == ["a", "b", "c"]
        assert [entry[2] for entry in order] == [0.0, 5.0, 10.0]

    def test_release_without_request_raises(self):
        resource = Resource(Engine(), capacity=1)
        with pytest.raises(RuntimeError):
            resource.release()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Resource(Engine(), capacity=0)

    def test_mm1_like_utilisation(self):
        """Single server, deterministic load: utilisation arithmetic."""
        engine, runner = make()
        resource = Resource(engine, capacity=1)
        served = []

        def customer(arrival):
            yield Timeout(arrival)
            yield resource.request()
            yield Timeout(2.0)
            resource.release()
            served.append(engine.now)

        for index in range(5):
            runner.start(customer(index * 1.0))
        engine.run()
        # Arrivals every 1 s, service 2 s: departures 2, 4, 6, 8, 10.
        assert served == [2.0, 4.0, 6.0, 8.0, 10.0]


class TestContainer:
    def test_initial_level_validation(self):
        with pytest.raises(ValueError):
            Container(Engine(), capacity=0.0)
        with pytest.raises(ValueError):
            Container(Engine(), capacity=10.0, initial=11.0)

    def test_get_when_available_is_immediate(self):
        container = Container(Engine(), 10.0, initial=5.0)
        grant = container.get(3.0)
        assert grant.triggered
        assert container.level == 2.0

    def test_get_blocks_until_put(self):
        engine, runner = make()
        container = Container(engine, 10.0)
        got = []

        def consumer():
            yield container.get(4.0)
            got.append(engine.now)

        def producer():
            yield Timeout(3.0)
            container.put(2.0)
            yield Timeout(3.0)
            container.put(2.0)

        runner.start(consumer())
        runner.start(producer())
        engine.run()
        assert got == [6.0]

    def test_put_clamped_at_capacity(self):
        container = Container(Engine(), 10.0, initial=8.0)
        container.put(5.0)
        assert container.level == 10.0

    def test_fifo_getters(self):
        engine = Engine()
        container = Container(engine, 10.0)
        first = container.get(4.0)
        second = container.get(1.0)
        container.put(4.5)
        # Strict FIFO: the big request is served first; the small one
        # must wait even though the residue would cover it.
        assert first.triggered
        assert not second.triggered
        container.put(0.5)
        assert second.triggered

    def test_invalid_amounts(self):
        container = Container(Engine(), 10.0)
        with pytest.raises(ValueError):
            container.get(-1.0)
        with pytest.raises(ValueError):
            container.get(11.0)
        with pytest.raises(ValueError):
            container.put(-1.0)


class TestStore:
    def test_put_get_fifo(self):
        engine = Engine()
        store = Store(engine)
        store.put("x")
        store.put("y")
        assert store.get().value == "x"
        assert store.get().value == "y"

    def test_get_blocks_until_item(self):
        engine, runner = make()
        store = Store(engine)
        received = []

        def consumer():
            item = yield store.get()
            received.append((item, engine.now))

        def producer():
            yield Timeout(4.0)
            store.put("late")

        runner.start(consumer())
        runner.start(producer())
        engine.run()
        assert received == [("late", 4.0)]

    def test_put_bypasses_buffer_for_waiting_getter(self):
        engine = Engine()
        store = Store(engine, capacity=1)
        waitable = store.get()
        store.put("direct")
        assert waitable.triggered and waitable.value == "direct"
        assert len(store) == 0

    def test_bounded_store_overflows_loudly(self):
        store = Store(Engine(), capacity=1)
        store.put(1)
        with pytest.raises(OverflowError):
            store.put(2)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Store(Engine(), capacity=0)
