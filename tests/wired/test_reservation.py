"""Unit + integration tests for wired reservation and re-routing."""

import pytest

from repro.simulation.scenarios import stationary
from repro.simulation.simulator import CellularSimulator
from repro.wired.extension import WiredBackboneExtension
from repro.wired.graph import BackboneGraph, chain_backbone, star_backbone
from repro.wired.reservation import WiredReservationManager


def small_chain():
    # bs0-r0-gateway, bs1-r0, bs2-r1-r0
    graph = BackboneGraph()
    graph.add_link("bs0", "router0", 10.0)
    graph.add_link("bs1", "router0", 10.0)
    graph.add_link("bs2", "router1", 10.0)
    graph.add_link("router1", "router0", 10.0)
    graph.add_link("router0", "gateway", 10.0)
    return graph


class TestAdmission:
    def test_admit_reserves_whole_path(self):
        manager = WiredReservationManager(small_chain())
        assert manager.admit_new(1, 2, 4.0)
        assert manager.route_of(1) == [
            "bs2", "router1", "router0", "gateway",
        ]
        for pair in [("bs2", "router1"), ("router0", "router1"),
                     ("gateway", "router0")]:
            assert manager.graph.link(*pair).used_bandwidth == 4.0

    def test_admit_blocks_on_any_full_link(self):
        manager = WiredReservationManager(small_chain())
        assert manager.admit_new(1, 0, 8.0)   # fills gateway link to 8
        assert not manager.admit_new(2, 1, 4.0)
        assert manager.wired_blocks == 1
        # The failed admission must not leak partial allocations.
        assert manager.graph.link("bs1", "router0").used_bandwidth == 0.0

    def test_admit_respects_link_reservation_targets(self):
        manager = WiredReservationManager(small_chain())
        manager.refresh_link_targets({0: 7.0})
        # bs0's route links now reserve 7 BUs for expected hand-offs.
        assert not manager.admit_new(1, 0, 4.0)
        assert manager.admit_new(2, 2, 4.0) is False  # shares router0-gw
        assert manager.admit_new(3, 2, 3.0)

    def test_non_predictive_ignores_targets(self):
        manager = WiredReservationManager(small_chain(), predictive=False)
        manager.refresh_link_targets({0: 7.0})
        assert manager.admit_new(1, 0, 4.0)


class TestReroute:
    def test_shared_links_kept(self):
        manager = WiredReservationManager(small_chain())
        manager.admit_new(1, 1, 4.0)  # bs1-r0-gateway
        assert manager.reroute(1, 0, 4.0)  # bs0-r0-gateway
        assert manager.graph.link("bs1", "router0").used_bandwidth == 0.0
        assert manager.graph.link("bs0", "router0").used_bandwidth == 4.0
        # The shared router0-gateway link kept its single allocation.
        assert manager.graph.link("router0", "gateway").used_bandwidth == 4.0

    def test_reroute_may_use_reserved_band(self):
        manager = WiredReservationManager(small_chain())
        manager.admit_new(1, 1, 4.0)
        manager.refresh_link_targets({0: 9.0})
        # A *new* connection could not take bs0's access link now, but
        # the re-route can: reserved bandwidth exists exactly for it.
        assert manager.reroute(1, 0, 4.0)

    def test_failed_reroute_keeps_old_route(self):
        manager = WiredReservationManager(small_chain())
        manager.admit_new(1, 1, 4.0)
        # Fill bs0's access link with unrelated traffic (e.g. local
        # sessions that never touch the gateway).
        manager.graph.link("bs0", "router0").allocate(99, 8.0)
        assert not manager.reroute(1, 0, 4.0)
        assert manager.wired_drops == 1
        # The old route is preserved: the caller decides drop vs retry
        # (soft hand-off windows keep trying).
        assert manager.route_of(1) == ["bs1", "router0", "gateway"]
        assert manager.graph.link("bs1", "router0").used_bandwidth == 4.0
        # A later release (the drop path) frees everything.
        manager.release(1)
        assert manager.graph.link("bs1", "router0").used_bandwidth == 0.0
        assert manager.graph.link("router0", "gateway").used_bandwidth == 0.0
        # The unrelated allocation is untouched.
        assert manager.graph.link("bs0", "router0").used_bandwidth == 8.0

    def test_reroute_unknown_connection_raises(self):
        manager = WiredReservationManager(small_chain())
        with pytest.raises(KeyError):
            manager.reroute(42, 0, 1.0)


class TestRelease:
    def test_release_frees_all_links(self):
        manager = WiredReservationManager(small_chain())
        manager.admit_new(1, 2, 4.0)
        manager.release(1)
        assert manager.active_routes() == 0
        assert all(
            link.used_bandwidth == 0.0 for link in manager.graph.links()
        )

    def test_release_is_idempotent(self):
        manager = WiredReservationManager(small_chain())
        manager.admit_new(1, 0, 4.0)
        manager.release(1)
        manager.release(1)  # no error


class TestSimulatorIntegration:
    def run_with_backbone(self, graph, duration=200.0, load=200.0):
        manager = WiredReservationManager(graph)
        config = stationary("AC3", offered_load=load, duration=duration,
                            seed=5)
        simulator = CellularSimulator(
            config, extensions=[WiredBackboneExtension(manager)]
        )
        result = simulator.run()
        return simulator, manager, result

    def test_routes_track_active_connections(self):
        simulator, manager, _result = self.run_with_backbone(
            chain_backbone(10, access_capacity=300.0, trunk_capacity=500.0)
        )
        assert manager.active_routes() == len(simulator.active_connections)

    def test_wired_bottleneck_raises_blocking(self):
        _sim, tight_manager, tight = self.run_with_backbone(
            star_backbone(10, access_capacity=150.0, uplink_capacity=300.0)
        )
        _sim2, _m, roomy = self.run_with_backbone(
            star_backbone(10, access_capacity=1e6, uplink_capacity=1e6)
        )
        assert tight.blocking_probability > roomy.blocking_probability
        assert tight_manager.wired_blocks > 0

    def test_no_link_over_capacity(self):
        _sim, manager, _result = self.run_with_backbone(
            chain_backbone(10, access_capacity=200.0, trunk_capacity=400.0)
        )
        for link in manager.graph.links():
            assert link.used_bandwidth <= link.capacity + 1e-9

    def test_install_rejects_unreachable_cells(self):
        graph = BackboneGraph()
        graph.add_link("bs0", "gateway", 10.0)  # only cell 0 connected
        manager = WiredReservationManager(graph)
        config = stationary("AC3", offered_load=100.0, duration=50.0)
        with pytest.raises(ValueError):
            CellularSimulator(
                config, extensions=[WiredBackboneExtension(manager)]
            )
