"""Unit tests for the backbone graph and routing."""

import pytest

from repro.wired.graph import (
    GATEWAY,
    BackboneGraph,
    bs_node,
    chain_backbone,
    mesh_backbone,
    star_backbone,
)


def triangle():
    graph = BackboneGraph()
    graph.add_link("a", "b", 10.0)
    graph.add_link("b", "c", 10.0)
    graph.add_link("a", "c", 10.0)
    return graph


class TestGraph:
    def test_duplicate_link_rejected(self):
        graph = triangle()
        with pytest.raises(ValueError):
            graph.add_link("b", "a", 5.0)

    def test_link_lookup_symmetric(self):
        graph = triangle()
        assert graph.link("a", "b") is graph.link("b", "a")
        with pytest.raises(KeyError):
            graph.link("a", "z")

    def test_neighbors(self):
        graph = triangle()
        assert set(graph.neighbors("a")) == {"b", "c"}
        assert graph.neighbors("unknown") == ()


class TestShortestPath:
    def test_direct_path(self):
        graph = triangle()
        assert graph.shortest_path("a", "b") == ["a", "b"]

    def test_self_path(self):
        assert triangle().shortest_path("a", "a") == ["a"]

    def test_multi_hop(self):
        graph = BackboneGraph()
        graph.add_link("a", "b", 1.0)
        graph.add_link("b", "c", 1.0)
        graph.add_link("c", "d", 1.0)
        assert graph.shortest_path("a", "d") == ["a", "b", "c", "d"]

    def test_disconnected_returns_none(self):
        graph = BackboneGraph()
        graph.add_link("a", "b", 1.0)
        graph.add_link("c", "d", 1.0)
        assert graph.shortest_path("a", "d") is None

    def test_unknown_node_raises(self):
        with pytest.raises(KeyError):
            triangle().shortest_path("a", "zz")

    def test_weights_override_hops(self):
        graph = BackboneGraph()
        graph.add_link("a", "b", 1.0)
        graph.add_link("b", "d", 1.0)
        graph.add_link("a", "c", 1.0)
        graph.add_link("c", "d", 1.0)
        weights = {("a", "b"): 10.0}
        path = graph.shortest_path("a", "d", weight=weights)
        assert path == ["a", "c", "d"]

    def test_path_links(self):
        graph = triangle()
        links = graph.path_links(["a", "b", "c"])
        assert [link.key for link in links] == [("a", "b"), ("b", "c")]


class TestBuilders:
    def test_star_routes_via_msc(self):
        graph = star_backbone(4)
        path = graph.shortest_path(bs_node(2), GATEWAY)
        assert path == ["bs2", "msc", GATEWAY]

    def test_chain_far_cells_cross_trunks(self):
        graph = chain_backbone(10, cells_per_router=2)
        path = graph.shortest_path(bs_node(9), GATEWAY)
        assert path[0] == "bs9"
        assert path[-1] == GATEWAY
        assert len(path) > 4  # several trunk hops

    def test_chain_every_cell_reaches_gateway(self):
        graph = chain_backbone(7, cells_per_router=3)
        for cell_id in range(7):
            assert graph.shortest_path(bs_node(cell_id), GATEWAY)

    def test_mesh_is_dense(self):
        graph = mesh_backbone(5)
        # 5 choose 2 BS-BS links + 1 gateway link.
        assert len(list(graph.links())) == 11
        assert graph.shortest_path(bs_node(4), GATEWAY) == [
            "bs4", "bs0", GATEWAY,
        ]

    def test_chain_validation(self):
        with pytest.raises(ValueError):
            chain_backbone(4, cells_per_router=0)
