"""Unit tests for wired link accounting."""

import pytest

from repro.wired.link import WiredCapacityError, WiredLink


def test_initial_state():
    link = WiredLink("a", "b", 100.0)
    assert link.key == ("a", "b")
    assert link.free_bandwidth == 100.0
    assert link.utilization() == 0.0


def test_key_is_order_independent():
    assert WiredLink("b", "a", 10.0).key == WiredLink("a", "b", 10.0).key


def test_validation():
    with pytest.raises(ValueError):
        WiredLink("a", "a", 10.0)
    with pytest.raises(ValueError):
        WiredLink("a", "b", 0.0)


def test_allocate_release_roundtrip():
    link = WiredLink("a", "b", 10.0)
    link.allocate(1, 4.0)
    assert link.used_bandwidth == 4.0
    assert link.holds(1)
    assert link.release(1) == 4.0
    assert link.used_bandwidth == 0.0
    assert not link.holds(1)


def test_double_allocate_rejected():
    link = WiredLink("a", "b", 10.0)
    link.allocate(1, 2.0)
    with pytest.raises(WiredCapacityError):
        link.allocate(1, 2.0)


def test_over_capacity_rejected():
    link = WiredLink("a", "b", 10.0)
    link.allocate(1, 8.0)
    with pytest.raises(WiredCapacityError):
        link.allocate(2, 3.0)


def test_release_unknown_rejected():
    link = WiredLink("a", "b", 10.0)
    with pytest.raises(WiredCapacityError):
        link.release(9)


def test_fits_new_respects_reservation():
    link = WiredLink("a", "b", 10.0)
    link.reserved_target = 4.0
    link.allocate(1, 6.0)
    assert not link.fits_new(1.0)
    assert link.fits_reroute(4.0)
    assert not link.fits_reroute(5.0)


def test_fits_new_boundary():
    link = WiredLink("a", "b", 10.0)
    link.reserved_target = 2.0
    assert link.fits_new(8.0)
    assert not link.fits_new(8.5)
