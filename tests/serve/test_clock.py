"""Unit tests for the stream clock abstraction."""

import time

import pytest

from repro.serve.clock import VirtualClock, WallClock


class FakeEngine:
    def __init__(self, now=0.0):
        self.now = now


class TestVirtualClock:
    def test_now_reads_the_engine(self):
        engine = FakeEngine(now=42.5)
        assert VirtualClock(engine).now() == 42.5

    def test_unstamped_events_are_refused(self):
        clock = VirtualClock(FakeEngine())
        with pytest.raises(ValueError, match="explicit timestamps"):
            clock.stamp(None)
        assert clock.stamp(3) == 3.0

    def test_regression_is_an_error_not_a_repair(self):
        clock = VirtualClock(FakeEngine())
        with pytest.raises(ValueError, match="precedes stream time"):
            clock.monotonic(5.0, 10.0)
        assert clock.monotonic(10.0, 10.0) == 10.0
        assert clock.monotonic(11.0, 10.0) == 11.0


class TestWallClock:
    def test_time_scale_must_be_positive(self):
        with pytest.raises(ValueError, match="time_scale"):
            WallClock(time_scale=0.0)
        with pytest.raises(ValueError, match="time_scale"):
            WallClock(time_scale=-2.0)

    def test_now_starts_at_the_origin_and_advances(self):
        clock = WallClock(origin=100.0)
        first = clock.now()
        assert first >= 100.0
        time.sleep(0.01)
        assert clock.now() > first

    def test_time_scale_stretches_stream_seconds(self):
        fast = WallClock(time_scale=1000.0)
        slow = WallClock(time_scale=0.001)
        time.sleep(0.01)
        assert fast.now() > slow.now()

    def test_stamp_fills_in_missing_timestamps(self):
        clock = WallClock(origin=50.0)
        assert clock.stamp(7.25) == 7.25
        assert clock.stamp(None) >= 50.0

    def test_monotonic_folds_racing_timestamps_forward(self):
        clock = WallClock()
        # A query stamped before an already-applied event decides
        # against current state instead of erroring.
        assert clock.monotonic(3.0, 8.0) == 8.0
        assert clock.monotonic(9.0, 8.0) == 9.0
