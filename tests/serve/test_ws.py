"""Tests for the stdlib RFC 6455 endpoint: codec, handshake, protocol."""

import asyncio
import json

import pytest

from repro.serve import AdmissionService
from repro.serve.ws import (
    OP_CLOSE,
    OP_TEXT,
    AsyncWsClient,
    WebSocketGateway,
    _parse_ws_url,
    _read_frame,
    encode_frame,
    handshake_accept,
)
from repro.simulation.scenarios import stationary


def _config():
    return stationary(
        "AC3", offered_load=120.0, duration=3600.0, seed=13, num_cells=6
    )


class TestFrameCodec:
    def test_rfc_6455_handshake_vector(self):
        # The worked example from RFC 6455 §1.3.
        assert (
            handshake_accept("dGhlIHNhbXBsZSBub25jZQ==")
            == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
        )

    @pytest.mark.parametrize("mask", [False, True])
    @pytest.mark.parametrize("size", [0, 5, 125, 126, 200, 65536, 70000])
    def test_frame_round_trips_all_length_encodings(self, size, mask):
        payload = bytes(range(256)) * (size // 256) + bytes(range(size % 256))
        frame = encode_frame(payload, mask=mask)

        async def decode():
            reader = asyncio.StreamReader()
            reader.feed_data(frame)
            reader.feed_eof()
            return await _read_frame(reader)

        opcode, decoded = asyncio.run(decode())
        assert opcode == OP_TEXT
        assert decoded == payload

    def test_masked_frames_obscure_the_wire_bytes(self):
        payload = b"admission-control"
        frame = encode_frame(payload, mask=True)
        assert payload not in frame
        assert payload in encode_frame(payload, mask=False)

    def test_fragmented_frames_are_rejected(self):
        frame = bytearray(encode_frame(b"partial"))
        frame[0] &= 0x7F  # clear FIN

        async def decode():
            reader = asyncio.StreamReader()
            reader.feed_data(bytes(frame))
            reader.feed_eof()
            return await _read_frame(reader)

        with pytest.raises(ConnectionError, match="fragmented"):
            asyncio.run(decode())

    def test_url_parsing(self):
        assert _parse_ws_url("ws://127.0.0.1:8766/") == (
            "127.0.0.1", 8766, "/"
        )
        assert _parse_ws_url("ws://example.org") == ("example.org", 80, "/")
        with pytest.raises(ValueError, match="ws://"):
            _parse_ws_url("ftp://example.org/")


async def _with_gateway(body):
    service = AdmissionService(_config(), series_wall_interval=0.0)
    await service.start()
    gateway = WebSocketGateway(service, port=0)
    await gateway.start()
    try:
        return await body(service, gateway)
    finally:
        await gateway.stop()
        await service.stop()


class TestGatewayProtocol:
    def test_admit_event_stats_and_errors(self):
        async def body(service, gateway):
            client = await AsyncWsClient.connect(gateway.url)
            decision = await client.request(
                {"op": "admit", "cell": 3, "id": "q1"}
            )
            assert decision["op"] == "decision"
            assert decision["id"] == "q1"
            assert decision["kind"] == "arrival"
            assert decision["admitted"] is True
            conn = decision["conn"]

            moved = await client.request(
                {"op": "event", "kind": "handoff", "cell": 4, "conn": conn}
            )
            assert moved["op"] == "decision" and moved["kind"] == "handoff"

            done = await client.request(
                {"op": "event", "kind": "complete", "conn": conn}
            )
            assert done == {"op": "ok"}

            stats = await client.request({"op": "stats"})
            assert stats["op"] == "stats"
            assert stats["decisions"] == 2

            for bad in (
                {"op": "admit"},  # missing cell
                {"op": "admit", "cell": 99},  # out of range
                {"op": "event", "kind": "teleport"},
                {"op": "transmogrify"},
            ):
                reply = await client.request(bad)
                assert reply["op"] == "error", reply
                assert reply["error"]

            # Error replies still echo the correlation id.
            reply = await client.request({"op": "nope", "id": 42})
            assert reply == {
                "op": "error", "error": "unknown op 'nope'", "id": 42
            }
            await client.close()
            assert gateway.connections_served == 1

        asyncio.run(_with_gateway(body))

    def test_subscribe_replays_backlog_then_streams_live(self):
        async def body(service, gateway):
            backlog_row = json.dumps({"t": 0.5, "events": 1})
            service.broadcast.write(backlog_row + "\n")

            client = await AsyncWsClient.connect(gateway.url)
            await client.send_json({"op": "subscribe"})
            replayed = await asyncio.wait_for(client.recv_json(), timeout=5.0)
            assert replayed == {"t": 0.5, "events": 1}
            assert "op" not in replayed  # series rows are not protocol frames

            # A second subscribe is a no-op (no duplicate backlog replay):
            # the next frame must be the live row, not the backlog again.
            await client.send_json({"op": "subscribe"})
            live_row = json.dumps({"t": 1.5, "events": 2})
            service.broadcast.write(live_row + "\n")
            live = await asyncio.wait_for(client.recv_json(), timeout=5.0)
            assert live == {"t": 1.5, "events": 2}

            assert service.broadcast.subscribers == 1
            await client.close()

        asyncio.run(_with_gateway(body))

    def test_subscriber_detaches_on_disconnect(self):
        async def body(service, gateway):
            client = await AsyncWsClient.connect(gateway.url)
            await client.send_json({"op": "subscribe"})
            # Round-trip an op so the subscribe is definitely processed.
            stats = await client.request({"op": "stats"})
            assert stats["op"] == "stats"
            assert service.broadcast.subscribers == 1
            await client.close()
            for _ in range(100):
                if service.broadcast.subscribers == 0:
                    break
                await asyncio.sleep(0.01)
            assert service.broadcast.subscribers == 0

        asyncio.run(_with_gateway(body))

    def test_ping_is_answered_with_pong(self):
        async def body(service, gateway):
            host, port, _ = _parse_ws_url(gateway.url)
            client = await AsyncWsClient.connect(gateway.url)
            client._writer.write(
                encode_frame(b"are-you-there", opcode=0x9, mask=True)
            )
            await client._writer.drain()
            opcode, payload = await _read_frame(client._reader)
            assert opcode == 0xA and payload == b"are-you-there"
            await client.close()

        asyncio.run(_with_gateway(body))

    def test_close_frame_is_echoed(self):
        async def body(service, gateway):
            client = await AsyncWsClient.connect(gateway.url)
            client._writer.write(
                encode_frame(b"", opcode=OP_CLOSE, mask=True)
            )
            await client._writer.drain()
            opcode, _payload = await _read_frame(client._reader)
            assert opcode == OP_CLOSE

        asyncio.run(_with_gateway(body))

    def test_plain_http_request_gets_a_400(self):
        async def body(service, gateway):
            reader, writer = await asyncio.open_connection(
                gateway.host, gateway.port
            )
            writer.write(
                b"GET / HTTP/1.1\r\nHost: localhost\r\n\r\n"
            )
            await writer.drain()
            response = await reader.read(4096)
            assert response.startswith(b"HTTP/1.1 400")
            assert b"RFC 6455" in response
            writer.close()
            await writer.wait_closed()
            assert gateway.connections_served == 0

        asyncio.run(_with_gateway(body))
