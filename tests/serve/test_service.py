"""Unit tests for the asyncio :class:`AdmissionService` façade."""

import asyncio
from dataclasses import replace

import pytest

from repro.serve import AdmissionService, warm_start
from repro.serve.driver import Decision
from repro.serve.events import ARRIVAL, COMPLETE, StreamEvent
from repro.simulation.scenarios import stationary


def _config(**overrides):
    defaults = dict(
        offered_load=120.0, duration=3600.0, seed=9, num_cells=6
    )
    defaults.update(overrides)
    scheme = defaults.pop("scheme", "AC3")
    return stationary(scheme, **defaults)


async def _with_service(body, config=None, **service_kwargs):
    service = AdmissionService(config or _config(), **service_kwargs)
    await service.start()
    try:
        return await body(service)
    finally:
        await service.stop()


def test_constructor_validates_budget_and_batch():
    with pytest.raises(ValueError, match="budget_ms"):
        AdmissionService(_config(), budget_ms=0.0)
    with pytest.raises(ValueError, match="max_batch"):
        AdmissionService(_config(), max_batch=0)


def test_submit_requires_a_running_service():
    service = AdmissionService(_config())

    async def scenario():
        with pytest.raises(RuntimeError, match="not running"):
            await service.admit(cell=0)
        await service.start()
        with pytest.raises(RuntimeError, match="already started"):
            await service.start()
        await service.stop()
        await service.stop()  # idempotent

    asyncio.run(scenario())


def test_admit_round_trip_returns_a_decision():
    async def body(service):
        decision = await service.admit(cell=2, traffic="voice")
        assert isinstance(decision, Decision)
        assert decision.kind == ARRIVAL
        assert decision.cell == 2
        assert decision.admitted  # an empty cell always has room
        assert decision.conn is not None
        assert decision.used > 0
        return decision

    asyncio.run(_with_service(body))


def test_submit_rejects_malformed_events():
    async def body(service):
        with pytest.raises(ValueError, match="no such cell"):
            await service.submit(
                StreamEvent(t=None, kind=ARRIVAL, cell=99)
            )
        with pytest.raises(ValueError, match="unknown traffic class"):
            await service.admit(cell=0, traffic="hologram")

    asyncio.run(_with_service(body))


def test_submit_many_aligns_results_with_events():
    async def body(service):
        batch = (
            StreamEvent(t=None, kind=ARRIVAL, cell=0),
            StreamEvent(t=None, kind=ARRIVAL, cell=99),  # malformed
            StreamEvent(t=None, kind=COMPLETE, conn=123456),  # notification
            StreamEvent(t=None, kind=ARRIVAL, cell=1),
        )
        results = await service.submit_many(batch)
        assert len(results) == len(batch)
        assert isinstance(results[0], Decision) and results[0].cell == 0
        # The malformed slot carries the error in place; the valid rest
        # of the group was still applied.
        assert isinstance(results[1], ValueError)
        assert results[2] is None
        assert isinstance(results[3], Decision) and results[3].cell == 1
        assert service.driver.ignored == 1  # the unknown-conn complete

    asyncio.run(_with_service(body))


def test_stats_counts_decisions_and_percentiles():
    async def body(service):
        for cell in range(4):
            await service.admit(cell=cell)
        stats = service.stats()
        assert stats["decisions"] == 4
        assert stats["decisions_per_s"] > 0
        assert 0 <= stats["p50_ms"] <= stats["p99_ms"]
        assert stats["active_connections"] == 4
        assert stats["queue_depth"] == 0
        assert stats["checkpoints"] == 0

    asyncio.run(_with_service(body))


def test_budget_misses_are_observed_not_enforced():
    async def body(service):
        decision = await service.admit(cell=0)
        assert decision.admitted  # late answers still answer

    # Any real decision overshoots a 1-nanosecond budget.
    asyncio.run(_with_service(body, budget_ms=1e-6))


def test_periodic_checkpoints_write_and_prune(tmp_path):
    state_dir = tmp_path / "serve-state"

    async def body(service):
        for round_ in range(4):
            await service.admit(cell=round_ % 3)
            await asyncio.sleep(0.002)
        return service.checkpoints_written

    written = asyncio.run(
        _with_service(
            body,
            checkpoint_every=0.001,
            checkpoint_dir=state_dir,
            checkpoint_keep=2,
        )
    )
    assert written >= 2
    kept = sorted(state_dir.glob("serve_*"))
    assert 1 <= len(kept) <= 2
    # The newest checkpoint is the one retained.
    assert kept[-1].name == f"serve_{written - 1:06d}"


def test_warm_start_resumes_from_a_service_checkpoint(tmp_path):
    state = tmp_path / "checkpoint"

    async def first(service):
        for cell in range(3):
            await service.admit(cell=cell)
        service.driver.save_state(state)

    asyncio.run(_with_service(first))
    assert state.exists()

    config = replace(_config(), warm_state=warm_start(state))

    async def second(service):
        decision = await service.admit(cell=1)
        assert decision.admitted

    asyncio.run(_with_service(second, config=config))


def test_broadcast_stream_fans_out_and_keeps_backlog():
    from repro.serve.service import BroadcastStream

    stream = BroadcastStream(backlog=2)
    seen = []
    stream.subscribe(seen.append)
    stream.write('{"t": 1.0}\n')
    stream.write('{"t": 2.0}\n')
    stream.write('{"t": 3.0}\n')
    stream.flush()
    assert seen == ['{"t": 1.0}', '{"t": 2.0}', '{"t": 3.0}']
    assert list(stream.backlog) == ['{"t": 2.0}', '{"t": 3.0}']
    stream.unsubscribe(seen.append)
    stream.unsubscribe(seen.append)  # tolerant of double removal
    stream.write('{"t": 4.0}\n')
    assert len(seen) == 3
    assert stream.subscribers == 0
