"""Tests for the closed-loop load generator."""

import asyncio

import pytest

from repro.serve import AdmissionService
from repro.serve.loadgen import run_load
from repro.simulation.scenarios import stationary


def _config():
    return stationary(
        "static", offered_load=120.0, duration=3600.0, seed=21, num_cells=6
    )


def _run(**kwargs):
    async def scenario():
        service = AdmissionService(_config(), series_wall_interval=0.0)
        await service.start()
        try:
            return await run_load(service, **kwargs), service
        finally:
            await service.stop()

    return asyncio.run(scenario())


def test_parameter_validation():
    async def scenario():
        service = AdmissionService(_config())
        with pytest.raises(ValueError, match="decisions"):
            await run_load(service, decisions=0)
        with pytest.raises(ValueError, match="concurrency"):
            await run_load(service, decisions=10, concurrency=0)
        with pytest.raises(ValueError, match="pipeline"):
            await run_load(service, decisions=10, pipeline=0)

    asyncio.run(scenario())


def test_report_counters_are_consistent():
    report, service = _run(decisions=300, concurrency=4, pipeline=8)
    assert report.decisions >= 300
    # Every decision is either an admission query or a hand-off query.
    assert report.admitted + report.rejected + report.handoffs == (
        report.decisions
    )
    assert 0.0 <= report.admitted_fraction <= 1.0
    assert report.decisions_per_s > 0
    assert report.elapsed_s > 0
    assert 0 <= report.p50_ms <= report.p99_ms
    # The service measured the same stream the generator drove.
    assert service.stats()["decisions"] == report.decisions


def test_to_json_is_bench_shaped():
    report, _service = _run(decisions=50, concurrency=2, pipeline=4)
    row = report.to_json()
    for field in (
        "decisions", "decisions_per_s", "elapsed_s", "admitted",
        "rejected", "admitted_fraction", "handoffs", "completes",
        "ignored", "p50_ms", "p99_ms",
    ):
        assert field in row, f"report missing {field!r}"
    assert row["decisions"] == report.decisions


def test_strict_request_response_mode():
    # pipeline=1 exercises the one-event-per-group path interactive
    # clients use.
    report, _service = _run(decisions=40, concurrency=2, pipeline=1)
    assert report.decisions >= 40
