"""The parity proof: streaming mode == virtual-time DES, decision for
decision and counter for counter, on the same event sequence."""

import pytest

from repro.serve import StreamDriver, comparable_counters, record_run
from repro.serve.events import ARRIVAL, HANDOFF, read_events, write_events
from repro.simulation.scenarios import stationary
from repro.simulation.simulator import simulate


def _config(**overrides):
    defaults = dict(
        offered_load=250.0, duration=300.0, seed=11, num_cells=6
    )
    defaults.update(overrides)
    scheme = defaults.pop("scheme", "AC3")
    return stationary(scheme, **defaults)


@pytest.mark.parametrize("scheme", ["AC1", "AC2", "AC3", "static"])
def test_replay_matches_des_decisions_and_counters(scheme):
    events, des_result = record_run(_config(scheme=scheme))
    assert events, "the recorded stream should not be empty"
    assert any(event.kind == HANDOFF for event in events)

    driver = StreamDriver(_config(scheme=scheme))
    decisions = driver.replay(events)
    driver.finish()
    live_result = driver.result()

    queries = [e for e in events if e.kind in (ARRIVAL, HANDOFF)]
    assert [d.admitted for d in decisions] == [e.admitted for e in queries]
    assert comparable_counters(live_result) == comparable_counters(des_result)


def test_recording_does_not_perturb_the_run():
    plain = simulate(_config())
    _events, recorded = record_run(_config())
    assert recorded.metrics_key() == plain.metrics_key()


def test_stream_roundtrips_through_jsonl(tmp_path):
    events, _ = record_run(_config(duration=60.0))
    path = tmp_path / "events.jsonl"
    with path.open("w") as handle:
        write_events(handle, events)
    with path.open() as handle:
        assert read_events(handle) == events


def test_streaming_mode_rejects_des_only_features():
    with pytest.raises(ValueError, match="retry"):
        StreamDriver(_config(retry_enabled=True))
    with pytest.raises(ValueError, match="soft_handoff"):
        StreamDriver(_config(soft_handoff_window=2.0))
