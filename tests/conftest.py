"""Shared fixtures: keep global id counters isolated between tests."""

import pytest

from repro.mobility.mobile import reset_mobile_ids
from repro.traffic.connection import reset_connection_ids


@pytest.fixture(autouse=True)
def _fresh_id_counters():
    reset_connection_ids()
    reset_mobile_ids()
    yield
