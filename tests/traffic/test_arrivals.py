"""Unit tests for arrival processes and the retry model."""

import random

import pytest

from repro.traffic.arrivals import (
    NO_RETRY,
    ModulatedPoissonArrivals,
    PoissonArrivals,
    RetryPolicy,
)
from repro.traffic.profiles import DayProfile, constant_profile


class TestPoisson:
    def test_arrivals_strictly_after_now(self):
        process = PoissonArrivals(2.0)
        rng = random.Random(0)
        for _ in range(100):
            assert process.next_arrival(10.0, rng) > 10.0

    def test_zero_rate_never_arrives(self):
        assert PoissonArrivals(0.0).next_arrival(0.0, random.Random(0)) is None

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            PoissonArrivals(-1.0)

    def test_mean_interarrival(self):
        process = PoissonArrivals(4.0)
        rng = random.Random(1)
        now, gaps = 0.0, []
        for _ in range(20_000):
            nxt = process.next_arrival(now, rng)
            gaps.append(nxt - now)
            now = nxt
        mean = sum(gaps) / len(gaps)
        assert 0.24 < mean < 0.26


class TestModulated:
    def test_constant_profile_matches_homogeneous_rate(self):
        # load 120 BU, E[b]=1, lifetime 120 -> rate 1/s.
        process = ModulatedPoissonArrivals(constant_profile(120.0), 1.0)
        assert process.rate_at(0.0) == pytest.approx(1.0)
        rng = random.Random(2)
        now, count = 0.0, 0
        while now < 2000.0:
            now = process.next_arrival(now, rng)
            count += 1
        assert 1800 < count < 2200

    def test_rate_follows_profile(self):
        profile = DayProfile([(0.0, 0.0), (12.0, 240.0)])
        process = ModulatedPoissonArrivals(profile, 2.0, 120.0)
        assert process.rate_at(12 * 3600.0) == pytest.approx(1.0)
        assert process.rate_at(0.0) == pytest.approx(0.0)

    def test_thinning_respects_low_rate_regions(self):
        profile = DayProfile([(0.0, 1.0), (12.0, 1200.0)])
        process = ModulatedPoissonArrivals(profile, 1.0, 120.0)
        rng = random.Random(3)
        # Sample arrivals starting at midnight; with rate ~1/120 per
        # second there, gaps should be two orders above the peak's.
        first = process.next_arrival(0.0, rng)
        assert first > 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ModulatedPoissonArrivals(constant_profile(10.0), 0.0)
        with pytest.raises(ValueError):
            ModulatedPoissonArrivals(constant_profile(0.0), 1.0)


class TestRetry:
    def test_disabled_never_retries(self):
        rng = random.Random(0)
        assert not NO_RETRY.should_retry(1, rng)

    def test_probability_declines_with_attempts(self):
        policy = RetryPolicy()
        rng = random.Random(5)
        trials = 20_000
        for attempts, expected in [(1, 0.9), (5, 0.5), (9, 0.1)]:
            retries = sum(
                policy.should_retry(attempts, rng) for _ in range(trials)
            )
            assert abs(retries / trials - expected) < 0.02

    def test_gives_up_at_ten(self):
        policy = RetryPolicy()
        rng = random.Random(0)
        assert not any(policy.should_retry(10, rng) for _ in range(100))
        assert not any(policy.should_retry(15, rng) for _ in range(100))

    def test_attempts_must_be_positive(self):
        with pytest.raises(ValueError):
            RetryPolicy().should_retry(0, random.Random(0))

    def test_default_delay_is_five_seconds(self):
        assert RetryPolicy().delay == 5.0
