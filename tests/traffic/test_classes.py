"""Unit tests for traffic classes and the voice/video mix."""

import random

import pytest

from repro.traffic.classes import (
    VIDEO,
    VOICE,
    TrafficClass,
    TrafficMix,
)


def test_bu_definitions():
    assert VOICE.bandwidth == 1.0
    assert VIDEO.bandwidth == 4.0


def test_traffic_class_validation():
    with pytest.raises(ValueError):
        TrafficClass("bad", 0.0)


def test_mix_ratio_validation():
    with pytest.raises(ValueError):
        TrafficMix(-0.1)
    with pytest.raises(ValueError):
        TrafficMix(1.1)


def test_pure_voice_mix():
    mix = TrafficMix(1.0)
    rng = random.Random(0)
    assert all(mix.sample(rng) is VOICE for _ in range(100))
    assert mix.mean_bandwidth == 1.0


def test_pure_video_mix():
    mix = TrafficMix(0.0)
    rng = random.Random(0)
    assert all(mix.sample(rng) is VIDEO for _ in range(100))
    assert mix.mean_bandwidth == 4.0


def test_mean_bandwidth_formula():
    assert TrafficMix(0.5).mean_bandwidth == 2.5
    assert TrafficMix(0.8).mean_bandwidth == pytest.approx(1.6)


def test_sample_frequency_tracks_ratio():
    mix = TrafficMix(0.8)
    rng = random.Random(7)
    draws = [mix.sample(rng) for _ in range(20_000)]
    voice_fraction = sum(1 for draw in draws if draw is VOICE) / len(draws)
    assert 0.78 < voice_fraction < 0.82


class TestEquation7:
    def test_rate_for_load_pure_voice(self):
        mix = TrafficMix(1.0)
        # L = lambda * 1 BU * 120 s  ->  lambda = L / 120.
        assert mix.arrival_rate_for_load(300.0) == pytest.approx(2.5)

    def test_rate_for_load_mixed(self):
        mix = TrafficMix(0.5)  # E[b] = 2.5
        assert mix.arrival_rate_for_load(300.0) == pytest.approx(1.0)

    def test_roundtrip(self):
        mix = TrafficMix(0.8)
        rate = mix.arrival_rate_for_load(150.0)
        assert mix.offered_load(rate) == pytest.approx(150.0)

    def test_validation(self):
        mix = TrafficMix(1.0)
        with pytest.raises(ValueError):
            mix.arrival_rate_for_load(-1.0)
        with pytest.raises(ValueError):
            mix.arrival_rate_for_load(10.0, mean_lifetime=0.0)
