"""Unit tests for connection lifecycle state."""

import pytest

from repro.traffic.classes import VIDEO, VOICE
from repro.traffic.connection import Connection, ConnectionState


def test_initial_state():
    connection = Connection(VOICE, start_time=5.0, cell_id=2)
    assert connection.is_active
    assert connection.state is ConnectionState.ACTIVE
    assert connection.prev_cell is None
    assert connection.bandwidth == 1.0
    assert connection.handoff_count == 0
    assert connection.end_time is None


def test_ids_are_unique_and_increasing():
    first = Connection(VOICE, 0.0, 0)
    second = Connection(VOICE, 0.0, 0)
    assert second.connection_id == first.connection_id + 1


def test_extant_sojourn():
    connection = Connection(VOICE, 0.0, 0, cell_entry_time=10.0)
    assert connection.extant_sojourn(25.0) == 15.0


def test_move_to_updates_session_state():
    connection = Connection(VIDEO, 0.0, cell_id=3, cell_entry_time=0.0)
    connection.move_to(4, now=30.0)
    assert connection.cell_id == 4
    assert connection.prev_cell == 3
    assert connection.cell_entry_time == 30.0
    assert connection.handoff_count == 1
    connection.move_to(5, now=60.0)
    assert connection.prev_cell == 4
    assert connection.handoff_count == 2


def test_finish_completed():
    connection = Connection(VOICE, 0.0, 0)
    connection.finish(ConnectionState.COMPLETED, now=42.0)
    assert not connection.is_active
    assert connection.end_time == 42.0


def test_finish_twice_raises():
    connection = Connection(VOICE, 0.0, 0)
    connection.finish(ConnectionState.DROPPED, now=1.0)
    with pytest.raises(RuntimeError):
        connection.finish(ConnectionState.COMPLETED, now=2.0)


@pytest.mark.parametrize(
    "state",
    [ConnectionState.COMPLETED, ConnectionState.DROPPED,
     ConnectionState.EXITED],
)
def test_terminal_states(state):
    connection = Connection(VOICE, 0.0, 0)
    connection.finish(state, now=1.0)
    assert connection.state is state
    assert not connection.is_active
