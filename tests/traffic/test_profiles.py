"""Unit tests for time-of-day profiles."""

import pytest

from repro.traffic.profiles import (
    DayProfile,
    constant_profile,
    paper_load_profile,
    paper_speed_profile,
)


def test_constant_profile():
    profile = constant_profile(42.0)
    for hour in (0.0, 6.3, 23.99):
        assert profile.value_at_hour(hour) == 42.0


def test_interpolation_between_breakpoints():
    profile = DayProfile([(0.0, 0.0), (12.0, 120.0)])
    assert profile.value_at_hour(6.0) == 60.0
    assert profile.value_at_hour(3.0) == 30.0


def test_wraps_midnight():
    profile = DayProfile([(22.0, 100.0), (2.0, 0.0)])
    # 22h -> 2h spans midnight: 0h is halfway.
    assert profile.value_at_hour(0.0) == 50.0
    assert profile.value_at_hour(23.0) == 75.0
    assert profile.value_at_hour(1.0) == 25.0


def test_hour_wraps_modulo_24():
    profile = DayProfile([(0.0, 10.0), (12.0, 20.0)])
    assert profile.value_at_hour(25.0) == profile.value_at_hour(1.0)
    assert profile.value_at_hour(-1.0) == profile.value_at_hour(23.0)


def test_value_at_seconds_default_day():
    profile = DayProfile([(0.0, 0.0), (12.0, 120.0)])
    assert profile.value_at(6 * 3600.0) == 60.0
    assert profile.value_at(30 * 3600.0) == 60.0  # next day


def test_compressed_day():
    profile = DayProfile([(0.0, 0.0), (12.0, 120.0)], day_seconds=2400.0)
    # One "day" is 2400 s -> hour 12 is at 1200 s.
    assert profile.value_at(1200.0) == 120.0
    assert profile.value_at(600.0) == 60.0
    assert profile.value_at(2400.0 + 600.0) == 60.0


def test_maximum_bounds_profile():
    profile = paper_load_profile(peak=180.0, base=20.0)
    maximum = profile.maximum()
    assert maximum == pytest.approx(180.0, rel=0.01)
    for hour in range(0, 24):
        assert profile.value_at_hour(float(hour)) <= maximum + 1e-9


def test_validation():
    with pytest.raises(ValueError):
        DayProfile([])
    with pytest.raises(ValueError):
        DayProfile([(25.0, 1.0)])
    with pytest.raises(ValueError):
        DayProfile([(1.0, 1.0), (1.0, 2.0)])
    with pytest.raises(ValueError):
        DayProfile([(0.0, 1.0)], day_seconds=0.0)


class TestPaperShapes:
    def test_load_peaks_at_rush_hours(self):
        profile = paper_load_profile(peak=180.0, base=20.0)
        assert profile.value_at_hour(9.0) == 180.0
        assert profile.value_at_hour(17.5) == 180.0
        assert profile.value_at_hour(3.0) == 20.0
        # The lunch bump is between base and peak.
        assert 20.0 < profile.value_at_hour(13.0) < 180.0

    def test_speed_dips_at_rush_hours(self):
        profile = paper_speed_profile(fast=100.0, slow=40.0)
        assert profile.value_at_hour(9.0) == 40.0
        assert profile.value_at_hour(17.5) == 40.0
        assert profile.value_at_hour(3.0) == 100.0

    def test_load_and_speed_anticorrelate_at_peaks(self):
        load = paper_load_profile()
        speed = paper_speed_profile()
        # Rush hour: max load, min speed; night: the reverse.
        assert load.value_at_hour(9.0) > load.value_at_hour(3.0)
        assert speed.value_at_hour(9.0) < speed.value_at_hour(3.0)
