"""Unit tests for the Naghshineh–Schwartz comparator policy."""

import math

import pytest

from repro.cellular.network import CellularNetwork
from repro.cellular.topology import LinearTopology
from repro.core.related import (
    NaghshinehSchwartzPolicy,
    convolve_bernoulli,
    overload_probability,
)
from repro.estimation.cache import CacheConfig
from repro.traffic.classes import VIDEO, VOICE
from repro.traffic.connection import Connection


class TestConvolution:
    def test_single_bernoulli(self):
        pmf = convolve_bernoulli([1.0], 0.3, 2)
        assert pmf == pytest.approx([0.7, 0.0, 0.3])

    def test_two_bernoullis(self):
        pmf = convolve_bernoulli(convolve_bernoulli([1.0], 0.5, 1), 0.5, 1)
        assert pmf == pytest.approx([0.25, 0.5, 0.25])

    def test_zero_probability_identity(self):
        assert convolve_bernoulli([0.4, 0.6], 0.0, 3) == [0.4, 0.6]

    def test_mass_conserved(self):
        pmf = [1.0]
        for index in range(30):
            pmf = convolve_bernoulli(pmf, 0.1 + 0.02 * (index % 5), 1 + index % 4)
        assert sum(pmf) == pytest.approx(1.0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            convolve_bernoulli([1.0], 1.5, 1)
        with pytest.raises(ValueError):
            convolve_bernoulli([1.0], 0.5, -1)

    def test_overload_probability(self):
        pmf = [0.2, 0.3, 0.5]  # values 0, 1, 2
        assert overload_probability(pmf, 1.0) == pytest.approx(0.5)
        assert overload_probability(pmf, 2.0) == 0.0
        assert overload_probability(pmf, 0.0) == pytest.approx(0.8)


def make_network(capacity=10.0):
    return CellularNetwork(
        LinearTopology(4),
        capacity=capacity,
        cache_config=CacheConfig(interval=None),
    )


def fill(network, cell_id, count, traffic_class=VOICE):
    for _ in range(count):
        network.cell(cell_id).attach(
            Connection(traffic_class, 0.0, cell_id)
        )


class TestPolicy:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            NaghshinehSchwartzPolicy(window=0.0)
        with pytest.raises(ValueError):
            NaghshinehSchwartzPolicy(overload_target=0.0)
        with pytest.raises(ValueError):
            NaghshinehSchwartzPolicy(dwell_time=-1.0)

    def test_probabilities_consistent(self):
        policy = NaghshinehSchwartzPolicy(
            window=10.0, dwell_time=36.0, mean_lifetime=120.0
        )
        alive = math.exp(-10.0 / 120.0)
        assert policy.p_stay + policy.p_depart == pytest.approx(alive)
        assert 0.0 < policy.p_stay < 1.0

    def test_admits_into_empty_network(self):
        network = make_network()
        decision = NaghshinehSchwartzPolicy().admit_new(
            network, 0, 1.0, now=0.0
        )
        assert decision.admitted
        assert decision.calculations >= 1

    def test_rejects_when_overload_certain(self):
        network = make_network(capacity=10.0)
        fill(network, 0, 10)
        policy = NaghshinehSchwartzPolicy(
            window=1.0, dwell_time=1e9, mean_lifetime=1e9
        )
        # p_stay ~= 1: everyone stays, the cell is full, the candidate
        # call pushes P(B > C) to ~1.
        decision = policy.admit_new(network, 0, 1.0, now=0.0)
        assert not decision.admitted

    def test_neighbor_pressure_blocks(self):
        network = make_network(capacity=10.0)
        # Both neighbours of cell 0 are loaded with video.
        fill(network, 1, 2, VIDEO)
        fill(network, 3, 2, VIDEO)
        fill(network, 0, 8)
        strict = NaghshinehSchwartzPolicy(
            window=30.0, overload_target=0.001, dwell_time=10.0,
            mean_lifetime=1e9,
        )
        decision = strict.admit_new(network, 0, 1.0, now=0.0)
        assert not decision.admitted

    def test_longer_window_estimates_lower_occupancy(self):
        """The §6 critique, mechanised: under the exponential-departure
        assumption a longer window predicts *emptier* cells (everyone
        has probably left), so the overload test only gets laxer —
        there is no adaptation to pull it back."""
        network = make_network(capacity=10.0)
        fill(network, 0, 10)
        overloads = []
        for window in (1.0, 30.0, 200.0):
            policy = NaghshinehSchwartzPolicy(
                window=window, dwell_time=36.0
            )
            distribution = policy._cell_distribution(network, 0)
            overloads.append(overload_probability(distribution, 9.0))
        assert overloads[0] > overloads[1] > overloads[2]

    def test_reserved_target_cleared(self):
        network = make_network()
        network.cell(0).reserved_target = 5.0
        NaghshinehSchwartzPolicy().admit_new(network, 0, 1.0, now=0.0)
        assert network.cell(0).reserved_target == 0.0

    def test_handoff_rule_unchanged(self):
        network = make_network(capacity=10.0)
        fill(network, 0, 9)
        policy = NaghshinehSchwartzPolicy()
        assert policy.admit_handoff(network, 0, 1.0)
        assert not policy.admit_handoff(network, 0, 2.0)

    def test_end_to_end_short_run(self):
        from repro.simulation.scenarios import stationary
        from repro.simulation.simulator import CellularSimulator

        config = stationary("AC3", offered_load=150.0, duration=120.0,
                            seed=2)
        simulator = CellularSimulator(
            config,
            policy=NaghshinehSchwartzPolicy(window=5.0, dwell_time=36.0),
        )
        result = simulator.run()
        assert result.scheme == "NS"
        assert result.total_new_requests > 0
        assert 0.0 <= result.dropping_probability <= 1.0
