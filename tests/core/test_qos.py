"""Unit tests for the QoS adaptation layer."""

import pytest

from repro.cellular.network import CellularNetwork
from repro.cellular.topology import LinearTopology
from repro.core.admission import AC1, StaticReservationPolicy
from repro.core.qos import AdaptiveQoSPolicy
from repro.estimation.cache import CacheConfig
from repro.traffic.classes import (
    ADAPTIVE_VIDEO,
    VOICE,
    AdaptiveTrafficClass,
)
from repro.traffic.connection import Connection


def make_network(capacity=10.0):
    return CellularNetwork(
        LinearTopology(3),
        capacity=capacity,
        cache_config=CacheConfig(interval=None),
    )


def adaptive_connection(cell_id=0):
    return Connection(ADAPTIVE_VIDEO, start_time=0.0, cell_id=cell_id)


def voice_connection(cell_id=0):
    return Connection(VOICE, start_time=0.0, cell_id=cell_id)


class TestAdaptiveClass:
    def test_floor_validation(self):
        with pytest.raises(ValueError):
            AdaptiveTrafficClass("x", 4.0, min_bandwidth=0.0)
        with pytest.raises(ValueError):
            AdaptiveTrafficClass("x", 4.0, min_bandwidth=5.0)

    def test_connection_bandwidth_properties(self):
        connection = adaptive_connection()
        assert connection.bandwidth == 4.0
        assert connection.full_bandwidth == 4.0
        assert connection.min_bandwidth == 1.0
        assert connection.reservation_basis == 1.0
        assert not connection.is_degraded

    def test_rigid_class_floor_equals_rate(self):
        connection = voice_connection()
        assert connection.min_bandwidth == 1.0
        assert connection.reservation_basis == 1.0


class TestCellAdjust:
    def test_degrade_and_upgrade_accounting(self):
        network = make_network()
        cell = network.cell(0)
        connection = adaptive_connection()
        cell.attach(connection)
        cell.adjust_bandwidth(connection, 1.0)
        assert connection.is_degraded
        assert cell.used_bandwidth == 1.0
        cell.adjust_bandwidth(connection, 4.0)
        assert not connection.is_degraded
        assert cell.used_bandwidth == 4.0

    def test_adjust_below_floor_rejected(self):
        network = make_network()
        cell = network.cell(0)
        connection = adaptive_connection()
        cell.attach(connection)
        with pytest.raises(ValueError):
            cell.adjust_bandwidth(connection, 0.5)

    def test_adjust_above_rate_rejected(self):
        network = make_network()
        cell = network.cell(0)
        connection = adaptive_connection()
        cell.attach(connection)
        with pytest.raises(ValueError):
            cell.adjust_bandwidth(connection, 5.0)

    def test_adjust_unattached_rejected(self):
        network = make_network()
        from repro.cellular.cell import CapacityError

        with pytest.raises(CapacityError):
            network.cell(0).adjust_bandwidth(adaptive_connection(), 2.0)


class TestHandoffAllocation:
    def test_full_rate_when_room(self):
        network = make_network(capacity=10.0)
        policy = AdaptiveQoSPolicy(AC1())
        allocation = policy.handoff_allocation(
            network, 0, adaptive_connection()
        )
        assert allocation == 4.0
        assert policy.degradations == 0

    def test_degrades_when_tight(self):
        network = make_network(capacity=10.0)
        for _ in range(8):
            network.cell(0).attach(voice_connection())
        policy = AdaptiveQoSPolicy(AC1())
        allocation = policy.handoff_allocation(
            network, 0, adaptive_connection()
        )
        assert allocation == 2.0  # the remaining headroom
        assert policy.degradations == 1

    def test_drops_below_floor(self):
        network = make_network(capacity=10.0)
        for _ in range(10):
            network.cell(0).attach(voice_connection())
        policy = AdaptiveQoSPolicy(AC1())
        assert policy.handoff_allocation(
            network, 0, adaptive_connection()
        ) is None

    def test_rigid_connection_all_or_nothing(self):
        network = make_network(capacity=10.0)
        for _ in range(2):
            network.cell(0).attach(adaptive_connection())  # 8 BUs
        policy = AdaptiveQoSPolicy(AC1())
        # Voice (rigid) still fits in the 2 BU headroom...
        assert policy.handoff_allocation(network, 0, voice_connection()) == 1.0
        network.cell(0).attach(voice_connection())
        network.cell(0).attach(voice_connection())
        # ...but is dropped, never degraded, once the cell is full.
        assert policy.handoff_allocation(
            network, 0, voice_connection()
        ) is None


class TestUpgradeOnRelease:
    def test_upgrades_degraded_connections(self):
        network = make_network(capacity=10.0)
        cell = network.cell(0)
        degraded = adaptive_connection()
        cell.attach(degraded)
        cell.adjust_bandwidth(degraded, 1.0)
        policy = AdaptiveQoSPolicy(AC1())
        policy.on_release(network, 0, now=10.0)
        assert degraded.bandwidth == 4.0
        assert policy.upgrades == 1

    def test_upgrade_respects_reservation(self):
        network = make_network(capacity=10.0)
        cell = network.cell(0)
        degraded = adaptive_connection()
        cell.attach(degraded)
        cell.adjust_bandwidth(degraded, 1.0)
        cell.reserved_target = 8.0  # only 1 BU of unreserved headroom
        policy = AdaptiveQoSPolicy(AC1())
        policy.on_release(network, 0, now=10.0)
        assert degraded.bandwidth == 2.0

    def test_upgrade_may_ignore_reservation_if_configured(self):
        network = make_network(capacity=10.0)
        cell = network.cell(0)
        degraded = adaptive_connection()
        cell.attach(degraded)
        cell.adjust_bandwidth(degraded, 1.0)
        cell.reserved_target = 8.0
        policy = AdaptiveQoSPolicy(
            AC1(), upgrade_respects_reservation=False
        )
        policy.on_release(network, 0, now=10.0)
        assert degraded.bandwidth == 4.0

    def test_partial_budget_split_oldest_first(self):
        network = make_network(capacity=12.0)
        cell = network.cell(0)
        first, second = adaptive_connection(), adaptive_connection()
        cell.attach(first)
        cell.attach(second)
        cell.adjust_bandwidth(first, 1.0)
        cell.adjust_bandwidth(second, 1.0)
        for _ in range(6):
            cell.attach(voice_connection())  # used = 8, free = 4
        policy = AdaptiveQoSPolicy(AC1())
        policy.on_release(network, 0, now=0.0)
        assert first.bandwidth == 4.0     # oldest restored fully
        assert second.bandwidth == 2.0    # remainder
        assert cell.used_bandwidth == pytest.approx(12.0)

    def test_noop_without_degraded_connections(self):
        network = make_network()
        policy = AdaptiveQoSPolicy(AC1())
        policy.on_release(network, 0, now=0.0)
        assert policy.upgrades == 0


class TestDelegation:
    def test_name_and_install(self):
        network = make_network()
        policy = AdaptiveQoSPolicy(StaticReservationPolicy(3.0))
        policy.install(network)
        assert policy.name == "adaptive-static"
        assert all(cell.reserved_target == 3.0 for cell in network.cells)

    def test_admit_new_delegates(self):
        network = make_network(capacity=10.0)
        policy = AdaptiveQoSPolicy(StaticReservationPolicy(9.0))
        policy.install(network)
        decision = policy.admit_new(network, 0, 2.0, now=0.0)
        assert not decision.admitted


class TestEndToEnd:
    def test_simulation_with_adaptive_qos_holds_invariants(self):
        from dataclasses import replace

        from repro.simulation.scenarios import stationary
        from repro.simulation.simulator import CellularSimulator

        config = replace(
            stationary(
                "AC3", offered_load=250.0, voice_ratio=0.5,
                duration=300.0, seed=4,
            ),
            adaptive_qos=True,
        )
        simulator = CellularSimulator(config)
        result = simulator.run()
        assert result.total_handoff_attempts > 0
        for cell in simulator.network.cells:
            assert 0.0 <= cell.used_bandwidth <= cell.capacity + 1e-9
            total = sum(c.bandwidth for c in cell.connections())
            assert cell.used_bandwidth == pytest.approx(total)
        policy = simulator.policy
        assert policy.degradations > 0
