"""Unit tests for Static/AC1/AC2/AC3 admission control."""

import pytest

from repro.cellular.network import CellularNetwork
from repro.cellular.topology import LinearTopology
from repro.core.admission import (
    AC1,
    AC2,
    AC3,
    StaticReservationPolicy,
    make_policy,
)
from repro.estimation.cache import CacheConfig
from repro.traffic.classes import VOICE
from repro.traffic.connection import Connection


def make_network(num_cells=4, capacity=100.0, ring=True):
    return CellularNetwork(
        LinearTopology(num_cells, ring=ring),
        capacity=capacity,
        cache_config=CacheConfig(interval=None),
    )


def fill(network, cell_id, bandwidth_units, entry_time=0.0, prev=None):
    """Attach ``bandwidth_units`` one-BU connections to a cell."""
    connections = []
    for _ in range(int(bandwidth_units)):
        connection = Connection(
            VOICE,
            start_time=entry_time,
            cell_id=cell_id,
            prev_cell=prev,
            cell_entry_time=entry_time,
        )
        network.cell(cell_id).attach(connection)
        connections.append(connection)
    return connections


def teach_mobility(network, cell_id, next_cell, sojourns, prev=None):
    """Record departures so ``cell_id`` predicts hand-offs to ``next_cell``."""
    station = network.station(cell_id)
    for index, sojourn in enumerate(sojourns):
        station.estimator.record_departure(
            float(index), prev, next_cell, sojourn
        )


class TestStatic:
    def test_install_sets_guard_everywhere(self):
        network = make_network()
        StaticReservationPolicy(10.0).install(network)
        assert all(cell.reserved_target == 10.0 for cell in network.cells)

    def test_admits_under_guard_line(self):
        network = make_network()
        policy = StaticReservationPolicy(10.0)
        policy.install(network)
        fill(network, 0, 89)
        decision = policy.admit_new(network, 0, 1.0, now=0.0)
        assert decision.admitted
        assert decision.calculations == 0

    def test_blocks_into_guard_band(self):
        network = make_network()
        policy = StaticReservationPolicy(10.0)
        policy.install(network)
        fill(network, 0, 90)
        decision = policy.admit_new(network, 0, 1.0, now=0.0)
        assert not decision.admitted

    def test_handoff_may_use_guard_band(self):
        network = make_network()
        policy = StaticReservationPolicy(10.0)
        policy.install(network)
        fill(network, 0, 95)
        assert policy.admit_handoff(network, 0, 4.0)
        fill(network, 0, 5)
        assert not policy.admit_handoff(network, 0, 1.0)

    def test_negative_guard_rejected(self):
        with pytest.raises(ValueError):
            StaticReservationPolicy(-1.0)


class TestAC1:
    def test_single_calculation(self):
        network = make_network()
        decision = AC1().admit_new(network, 0, 1.0, now=10.0)
        assert decision.calculations == 1
        assert decision.admitted  # empty network, B_r = 0

    def test_reservation_installed_on_cell(self):
        network = make_network()
        # Neighbour cell 1 predicts imminent hand-offs into cell 0.
        teach_mobility(network, 1, 0, sojourns=[5.0] * 10)
        fill(network, 1, 20, entry_time=9.0)
        network.station(0).window.t_est = 10.0
        AC1().admit_new(network, 0, 1.0, now=10.0)
        assert network.cell(0).reserved_target > 0.0

    def test_blocks_when_reservation_fills_cell(self):
        network = make_network(capacity=10.0)
        teach_mobility(network, 1, 0, sojourns=[5.0] * 20)
        fill(network, 1, 10, entry_time=9.5)
        network.station(0).window.t_est = 50.0
        fill(network, 0, 3)
        decision = AC1().admit_new(network, 0, 1.0, now=10.0)
        # B_r ~= 10 BUs expected from cell 1 -> no room for new traffic.
        assert not decision.admitted

    def test_ignores_neighbor_saturation(self):
        network = make_network(capacity=10.0)
        fill(network, 1, 10)  # neighbour full, cannot reserve anything
        decision = AC1().admit_new(network, 0, 1.0, now=0.0)
        assert decision.admitted  # AC1 never looks at the neighbours


class TestAC2:
    def test_calculates_in_all_neighbors_plus_self(self):
        network = make_network()
        decision = AC2().admit_new(network, 0, 1.0, now=0.0)
        assert decision.calculations == 3  # two ring neighbours + self

    def test_line_borders_have_fewer_calcs(self):
        network = make_network(ring=False)
        decision = AC2().admit_new(network, 0, 1.0, now=0.0)
        assert decision.calculations == 2  # one neighbour + self

    def test_blocks_when_neighbor_cannot_reserve(self):
        network = make_network(capacity=10.0)
        # Neighbour 1 is full and predicts hand-offs into cell 2: its
        # own B_r cannot be reserved.
        teach_mobility(network, 1, 2, sojourns=[5.0] * 20)
        fill(network, 1, 10, entry_time=0.0)
        # Make neighbour 2 predict into cell 1 so B_{r,1} > 0.
        teach_mobility(network, 2, 1, sojourns=[5.0] * 20)
        fill(network, 2, 10, entry_time=9.5)
        network.station(1).window.t_est = 50.0
        decision = AC2().admit_new(network, 0, 1.0, now=10.0)
        assert not decision.admitted

    def test_admits_when_everyone_fits(self):
        network = make_network()
        fill(network, 1, 10)
        decision = AC2().admit_new(network, 0, 1.0, now=0.0)
        assert decision.admitted


class TestAC3:
    def test_no_suspects_single_calculation(self):
        network = make_network()
        decision = AC3().admit_new(network, 0, 1.0, now=0.0)
        assert decision.calculations == 1

    def test_suspect_neighbor_recalculates(self):
        network = make_network(capacity=10.0)
        # Cell 1 looks unable to reserve its previous target.
        fill(network, 1, 8)
        network.cell(1).reserved_target = 5.0  # 8 + 5 > 10 -> suspect
        decision = AC3().admit_new(network, 0, 1.0, now=0.0)
        # Recalculation finds B_r = 0 (no mobility history): admitted.
        assert decision.calculations == 2
        assert decision.admitted
        assert network.cell(1).reserved_target == 0.0

    def test_suspect_still_failing_blocks(self):
        network = make_network(capacity=10.0)
        teach_mobility(network, 2, 1, sojourns=[5.0] * 20)
        fill(network, 2, 10, entry_time=9.5)
        fill(network, 1, 9)
        network.cell(1).reserved_target = 5.0  # suspect
        network.station(1).window.t_est = 50.0
        decision = AC3().admit_new(network, 0, 1.0, now=10.0)
        assert decision.calculations == 2
        assert not decision.admitted

    def test_healthy_neighbors_not_recalculated(self):
        network = make_network()
        network.cell(1).reserved_target = 5.0  # fits easily in 100
        before = network.station(1).reservation_calculations
        AC3().admit_new(network, 0, 1.0, now=0.0)
        assert network.station(1).reservation_calculations == before


class TestHandoffRule:
    @pytest.mark.parametrize("policy", [AC1(), AC2(), AC3()])
    def test_handoff_only_needs_capacity(self, policy):
        network = make_network(capacity=10.0)
        network.cell(0).reserved_target = 9.0
        fill(network, 0, 9)
        assert policy.admit_handoff(network, 0, 1.0)
        assert not policy.admit_handoff(network, 0, 2.0)


class TestFactory:
    @pytest.mark.parametrize(
        "name, expected",
        [
            ("static", StaticReservationPolicy),
            ("AC1", AC1),
            ("ac2", AC2),
            ("Ac3", AC3),
        ],
    )
    def test_known_names(self, name, expected):
        assert isinstance(make_policy(name), expected)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_policy("AC9")

    def test_static_guard_kwarg(self):
        policy = make_policy("static", guard_bandwidth=25.0)
        assert policy.guard_bandwidth == 25.0
