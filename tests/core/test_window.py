"""Unit tests for the Figure-6 estimation window controller."""

import pytest

from repro.core.window import (
    EstimationWindowController,
    StepPolicy,
    WindowControllerConfig,
)

MAX_SOJ = 100.0


def make(**kwargs):
    return EstimationWindowController(WindowControllerConfig(**kwargs))


class TestConfig:
    def test_reference_window_is_ceil_inverse_target(self):
        assert WindowControllerConfig(0.01).reference_window == 100
        assert WindowControllerConfig(0.015).reference_window == 67
        assert WindowControllerConfig(0.5).reference_window == 2

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            WindowControllerConfig(target_drop_probability=0.0)
        with pytest.raises(ValueError):
            WindowControllerConfig(target_drop_probability=1.0)

    def test_initial_window_below_min_rejected(self):
        with pytest.raises(ValueError):
            WindowControllerConfig(initial_window=0.5, min_window=1.0)


class TestInitialState:
    def test_initialisation_matches_pseudocode(self):
        controller = make(target_drop_probability=0.01, initial_window=1.0)
        assert controller.observation_window == 100
        assert controller.t_est == 1.0
        assert controller.handoffs == 0
        assert controller.drops == 0


class TestIncrease:
    def test_first_drop_within_quota_no_increase(self):
        # W_obs = w -> quota = 1: one drop is allowed.
        controller = make()
        controller.on_handoff(dropped=True, max_sojourn=MAX_SOJ)
        assert controller.t_est == 1.0
        assert controller.observation_window == 100

    def test_second_drop_triggers_increase(self):
        controller = make()
        controller.on_handoff(dropped=True, max_sojourn=MAX_SOJ)
        controller.on_handoff(dropped=True, max_sojourn=MAX_SOJ)
        assert controller.t_est == 2.0
        assert controller.observation_window == 200

    def test_each_extra_drop_extends_window_and_t_est(self):
        controller = make()
        for _ in range(5):
            controller.on_handoff(dropped=True, max_sojourn=MAX_SOJ)
        # Drops 2..5 each exceed the growing quota (1, 2, 3, 4).
        assert controller.t_est == 5.0
        assert controller.observation_window == 500

    def test_t_est_bounded_by_max_sojourn(self):
        controller = make()
        for _ in range(50):
            controller.on_handoff(dropped=True, max_sojourn=3.0)
        assert controller.t_est == 3.0

    def test_no_increase_when_no_history(self):
        # max_sojourn 0 (empty estimators): T_est must stay at minimum.
        controller = make()
        for _ in range(10):
            controller.on_handoff(dropped=True, max_sojourn=0.0)
        assert controller.t_est == 1.0


class TestDecrease:
    def test_quiet_window_decreases_t_est(self):
        controller = make()
        # Drive T_est up to 3 first.
        for _ in range(3):
            controller.on_handoff(dropped=True, max_sojourn=MAX_SOJ)
        assert controller.t_est == 3.0
        window = controller.observation_window
        for _ in range(int(window) + 1):
            controller.on_handoff(dropped=False, max_sojourn=MAX_SOJ)
        assert controller.t_est == 2.0
        assert controller.observation_window == 100
        # Counters were reset mid-loop; only post-reset hand-offs remain.
        assert controller.drops == 0
        assert controller.handoffs < 4

    def test_t_est_never_below_one(self):
        controller = make()
        for _ in range(301):
            controller.on_handoff(dropped=False, max_sojourn=MAX_SOJ)
        assert controller.t_est == 1.0

    def test_inclusive_decrement_allows_exact_quota(self):
        controller = make(inclusive_decrement=True)
        for _ in range(2):
            controller.on_handoff(dropped=True, max_sojourn=MAX_SOJ)
        assert controller.t_est == 2.0
        # W_obs = 200 -> quota = 2 and we have exactly 2 drops: the
        # inclusive rule (prose of §4.2) still decrements.
        for _ in range(int(controller.observation_window) + 1):
            controller.on_handoff(dropped=False, max_sojourn=MAX_SOJ)
        assert controller.t_est == 1.0

    def test_strict_decrement_blocks_exact_quota(self):
        controller = make(inclusive_decrement=False)
        for _ in range(2):
            controller.on_handoff(dropped=True, max_sojourn=MAX_SOJ)
        start = controller.t_est
        # Exactly quota drops (W_obs=200 -> quota=2, already have 2).
        for _ in range(int(controller.observation_window) + 1):
            controller.on_handoff(dropped=False, max_sojourn=MAX_SOJ)
        assert controller.t_est == start  # no decrement under strict <


class TestCounters:
    def test_totals_accumulate_across_windows(self):
        controller = make()
        for _ in range(150):
            controller.on_handoff(dropped=False, max_sojourn=MAX_SOJ)
        controller.on_handoff(dropped=True, max_sojourn=MAX_SOJ)
        assert controller.total_handoffs == 151
        assert controller.total_drops == 1
        assert controller.drop_ratio == pytest.approx(1 / 151)

    def test_drop_ratio_zero_without_handoffs(self):
        assert make().drop_ratio == 0.0

    def test_adjustments_record_direction_and_time(self):
        controller = make()
        controller.on_handoff(dropped=True, max_sojourn=MAX_SOJ, now=5.0)
        controller.on_handoff(dropped=True, max_sojourn=MAX_SOJ, now=9.0)
        assert len(controller.adjustments) == 1
        adjustment = controller.adjustments[0]
        assert adjustment.time == 9.0
        assert adjustment.increased
        assert adjustment.new_window == 2.0


class TestStepPolicies:
    def drive_up(self, controller, drops):
        for _ in range(drops):
            controller.on_handoff(dropped=True, max_sojourn=MAX_SOJ)

    def test_additive_steps_grow(self):
        controller = make(step_policy=StepPolicy.ADDITIVE)
        self.drive_up(controller, 4)
        # Steps 1, 2, 3 after the free first drop -> T_est = 1+1+2+3.
        assert controller.t_est == 7.0

    def test_multiplicative_steps_grow(self):
        controller = make(step_policy=StepPolicy.MULTIPLICATIVE)
        self.drive_up(controller, 4)
        # Steps 1, 2, 4 -> T_est = 1+1+2+4.
        assert controller.t_est == 8.0

    def test_direction_change_resets_step(self):
        controller = make(step_policy=StepPolicy.ADDITIVE)
        self.drive_up(controller, 4)
        top = controller.t_est
        window = controller.observation_window
        for _ in range(int(window) + 1):
            controller.on_handoff(dropped=False, max_sojourn=MAX_SOJ)
        # First decrement after the direction change is a unit step.
        assert controller.t_est == top - 1.0

    def test_unit_policy_constant_steps(self):
        controller = make(step_policy=StepPolicy.UNIT)
        self.drive_up(controller, 6)
        assert controller.t_est == 6.0
