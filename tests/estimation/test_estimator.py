"""Unit tests for the Bayes hand-off probability estimator (Eq. 4)."""

import pytest

from repro.estimation.cache import CacheConfig
from repro.estimation.estimator import KnownPathEstimator, MobilityEstimator


def make_estimator(**config_kwargs):
    defaults = {"interval": None}
    defaults.update(config_kwargs)
    return MobilityEstimator(CacheConfig(**defaults))


def populated_estimator():
    """History for prev=1: sojourns 10,20 -> cell 2; 30,40 -> cell 3."""
    estimator = make_estimator()
    estimator.record_departure(100.0, 1, 2, 10.0)
    estimator.record_departure(101.0, 1, 2, 20.0)
    estimator.record_departure(102.0, 1, 3, 30.0)
    estimator.record_departure(103.0, 1, 3, 40.0)
    return estimator


class TestEquation4:
    def test_fresh_extant_full_window(self):
        estimator = populated_estimator()
        # extant=0, t_est=50 covers every observation: 2/4 toward cell 2.
        assert estimator.handoff_probability(200.0, 1, 0.0, 2, 50.0) == 0.5
        assert estimator.handoff_probability(200.0, 1, 0.0, 3, 50.0) == 0.5

    def test_numerator_window_limits(self):
        estimator = populated_estimator()
        # extant=0, t_est=15 only covers the sojourn-10 observation.
        assert estimator.handoff_probability(200.0, 1, 0.0, 2, 15.0) == 0.25
        assert estimator.handoff_probability(200.0, 1, 0.0, 3, 15.0) == 0.0

    def test_conditioning_on_extant_sojourn(self):
        estimator = populated_estimator()
        # extant=25: only sojourns {30, 40} remain possible -> all to 3.
        assert estimator.handoff_probability(200.0, 1, 25.0, 3, 100.0) == 1.0
        assert estimator.handoff_probability(200.0, 1, 25.0, 2, 100.0) == 0.0

    def test_bayes_update_partial(self):
        estimator = populated_estimator()
        # extant=15: remaining {20->2, 30->3, 40->3}; t_est=10 covers 20.
        probability = estimator.handoff_probability(200.0, 1, 15.0, 2, 10.0)
        assert probability == pytest.approx(1.0 / 3.0)

    def test_stationary_when_extant_exceeds_history(self):
        estimator = populated_estimator()
        assert estimator.is_stationary(200.0, 1, 45.0)
        assert estimator.handoff_probability(200.0, 1, 45.0, 2, 100.0) == 0.0
        assert estimator.handoff_probability(200.0, 1, 45.0, 3, 100.0) == 0.0

    def test_unknown_prev_has_no_history(self):
        estimator = populated_estimator()
        assert estimator.is_stationary(200.0, 9, 0.0)
        assert estimator.handoff_probability(200.0, 9, 0.0, 2, 100.0) == 0.0

    def test_zero_t_est_zero_probability(self):
        estimator = populated_estimator()
        assert estimator.handoff_probability(200.0, 1, 0.0, 2, 0.0) == 0.0

    def test_monotone_in_t_est(self):
        estimator = populated_estimator()
        values = [
            estimator.handoff_probability(200.0, 1, 0.0, 3, t_est)
            for t_est in (5.0, 25.0, 35.0, 50.0)
        ]
        assert values == sorted(values)

    def test_probabilities_sum_to_at_most_one(self):
        estimator = populated_estimator()
        probabilities = estimator.handoff_probabilities(200.0, 1, 5.0, 100.0)
        assert sum(probabilities.values()) <= 1.0 + 1e-9

    def test_probabilities_dict_matches_scalar(self):
        estimator = populated_estimator()
        probabilities = estimator.handoff_probabilities(200.0, 1, 0.0, 15.0)
        assert probabilities == {
            2: estimator.handoff_probability(200.0, 1, 0.0, 2, 15.0)
        }


class TestBatchEquation5:
    class FakeConnection:
        def __init__(self, bandwidth, prev_cell, cell_entry_time):
            self.bandwidth = bandwidth
            self.prev_cell = prev_cell
            self.cell_entry_time = cell_entry_time

    def test_batch_matches_per_connection_sum(self):
        estimator = populated_estimator()
        now = 200.0
        connections = [
            self.FakeConnection(1.0, 1, 195.0),
            self.FakeConnection(4.0, 1, 180.0),
            self.FakeConnection(2.0, 1, 150.0),
            self.FakeConnection(1.0, 9, 190.0),  # unknown prev
        ]
        t_est = 12.0
        expected = sum(
            connection.bandwidth
            * estimator.handoff_probability(
                now,
                connection.prev_cell,
                now - connection.cell_entry_time,
                2,
                t_est,
            )
            for connection in connections
        )
        got = estimator.expected_bandwidth(now, connections, 2, t_est)
        assert got == pytest.approx(expected)

    def test_batch_zero_when_t_est_zero(self):
        estimator = populated_estimator()
        connections = [self.FakeConnection(1.0, 1, 195.0)]
        assert estimator.expected_bandwidth(200.0, connections, 2, 0.0) == 0.0


class TestSnapshotLifecycle:
    def test_new_recording_invalidates_snapshot(self):
        estimator = make_estimator()
        estimator.record_departure(10.0, 1, 2, 5.0)
        assert estimator.handoff_probability(20.0, 1, 0.0, 2, 10.0) == 1.0
        estimator.record_departure(21.0, 1, 3, 5.0)
        assert estimator.handoff_probability(30.0, 1, 0.0, 2, 10.0) == 0.5

    def test_finite_interval_snapshot_ages_out(self):
        estimator = MobilityEstimator(
            CacheConfig(interval=100.0), rebuild_interval=10.0
        )
        estimator.record_departure(10.0, 1, 2, 5.0)
        assert estimator.handoff_probability(20.0, 1, 0.0, 2, 10.0) == 1.0
        # 200 s later the quadruplet left the window; the stale snapshot
        # must be rebuilt (rebuild_interval passed).
        assert estimator.handoff_probability(220.0, 1, 0.0, 2, 10.0) == 0.0

    def test_max_sojourn_across_prevs(self):
        estimator = make_estimator()
        estimator.record_departure(10.0, 1, 2, 5.0)
        estimator.record_departure(11.0, 4, 2, 55.0)
        estimator.record_departure(12.0, None, 3, 25.0)
        assert estimator.max_sojourn(20.0) == 55.0

    def test_max_sojourn_empty(self):
        assert make_estimator().max_sojourn(0.0) == 0.0


class TestKnownPathEstimator:
    def test_mass_concentrates_on_known_next(self):
        estimator = KnownPathEstimator(CacheConfig(interval=None))
        estimator.record_departure(10.0, 1, 2, 10.0)
        estimator.record_departure(11.0, 1, 3, 20.0)
        # Route guidance says next=3: sojourn marginal over all history.
        probability = estimator.handoff_probability_known_next(
            100.0, 1, 0.0, 3, 15.0, actual_next=3
        )
        assert probability == 0.5  # only the sojourn-10 mass is in window
        assert (
            estimator.handoff_probability_known_next(
                100.0, 1, 0.0, 3, 15.0, actual_next=2
            )
            == 0.0
        )

    def test_stationary_still_zero(self):
        estimator = KnownPathEstimator(CacheConfig(interval=None))
        estimator.record_departure(10.0, 1, 2, 10.0)
        assert (
            estimator.handoff_probability_known_next(
                100.0, 1, 50.0, 2, 15.0, actual_next=2
            )
            == 0.0
        )
