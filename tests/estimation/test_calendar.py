"""Unit tests for weekday/weekend pattern sets."""

import pytest

from repro.cellular.network import CellularNetwork
from repro.cellular.topology import LinearTopology
from repro.estimation.calendar import CalendarEstimator, WeekSchedule

DAY = 86_400.0


class TestWeekSchedule:
    def test_default_week(self):
        schedule = WeekSchedule()
        assert schedule.day_type(0.0) == "weekday"
        assert schedule.day_type(4 * DAY + 100.0) == "weekday"
        assert schedule.day_type(5 * DAY) == "weekend"
        assert schedule.day_type(6.9 * DAY) == "weekend"

    def test_wraps_weekly(self):
        schedule = WeekSchedule()
        assert schedule.day_type(7 * DAY) == "weekday"
        assert schedule.day_type(12 * DAY) == "weekend"

    def test_occurrences(self):
        schedule = WeekSchedule()
        assert schedule.occurrences_per_week("weekday") == 5
        assert schedule.occurrences_per_week("weekend") == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            WeekSchedule(pattern=())
        with pytest.raises(ValueError):
            WeekSchedule(day_seconds=0.0)

    def test_scaled_days(self):
        schedule = WeekSchedule(day_seconds=100.0)
        assert schedule.week_seconds == 700.0
        assert schedule.day_type(550.0) == "weekend"


class TestCalendarEstimator:
    def make(self):
        return CalendarEstimator(
            schedule=WeekSchedule(day_seconds=1000.0),
            interval=100.0,
        )

    def test_recordings_routed_by_day_type(self):
        estimator = self.make()
        # Weekday observation (day 0) vs weekend observation (day 5).
        estimator.record_departure(500.0, 1, 2, 10.0)
        estimator.record_departure(5_500.0, 1, 3, 50.0)
        weekday = estimator.estimator_for(500.0)
        weekend = estimator.estimator_for(5_500.0)
        assert weekday is not weekend
        assert weekday.cache.total_recorded == 1
        assert weekend.cache.total_recorded == 1

    def test_queries_use_matching_pattern_set(self):
        estimator = self.make()
        estimator.record_departure(500.0, 1, 2, 10.0)     # weekday
        estimator.record_departure(5_500.0, 1, 3, 10.0)   # weekend
        # One week later, same weekday time: only cell 2 mass visible.
        weekday_probabilities = estimator.handoff_probabilities(
            7_500.0, 1, 0.0, 100.0
        )
        assert set(weekday_probabilities) == {2}
        # Weekend query sees only the weekend history.
        weekend_probabilities = estimator.handoff_probabilities(
            12_500.0, 1, 0.0, 100.0
        )
        assert set(weekend_probabilities) == {3}

    def test_weekend_period_is_weekly(self):
        estimator = self.make()
        weekend = estimator.estimator_for(5_500.0)
        assert weekend.cache.config.period == 7_000.0

    def test_uniform_pattern_keeps_daily_period(self):
        estimator = CalendarEstimator(
            schedule=WeekSchedule(
                pattern=("day",) * 7, day_seconds=1000.0
            ),
            interval=100.0,
        )
        assert estimator.estimator_for(0.0).cache.config.period == 1000.0

    def test_aggregate_cache_view(self):
        estimator = self.make()
        estimator.record_departure(500.0, 1, 2, 10.0)
        estimator.record_departure(5_500.0, 1, 3, 10.0)
        assert estimator.cache.total_recorded == 2
        assert estimator.cache.size() == 2

    def test_max_sojourn_uses_active_pattern(self):
        estimator = self.make()
        estimator.record_departure(500.0, 1, 2, 10.0)
        estimator.record_departure(5_500.0, 1, 3, 99.0)
        assert estimator.max_sojourn(7_500.0) == 10.0
        assert estimator.max_sojourn(12_500.0) == 99.0

    def test_boundary_window_sees_both_sides_of_midnight(self):
        # Regression: a T_int half-width window wrapping a type-changing
        # midnight boundary must select quadruplets from both sides.
        estimator = CalendarEstimator(
            schedule=WeekSchedule(
                pattern=("weekday",) * 5 + ("weekend",) * 2,
                day_seconds=100.0,
            ),
            interval=30.0,
        )
        estimator.record_departure(490.0, 1, 2, 10.0)  # Fri 23:50-ish
        estimator.record_departure(505.0, 1, 3, 10.0)  # Sat 00:05-ish
        # A weekday query one week later at 23:50: its window
        # [460, 520] wraps into Saturday; both entries must be visible.
        function = estimator.function_for(1190.0, 1)
        assert function.sample_count_above(0.0) == 2
        assert set(function.next_cells()) == {2, 3}
        # And the mirror runs the other way: a weekend query just after
        # midnight sees Friday's tail too.
        weekend_function = estimator.function_for(1205.0, 1)
        assert weekend_function.sample_count_above(0.0) == 2

    def test_mid_day_recordings_are_not_mirrored(self):
        estimator = self.make()  # day_seconds=1000, interval=100
        estimator.record_departure(500.0, 1, 2, 10.0)
        assert estimator.estimator_for(500.0).cache.total_recorded == 1
        assert estimator.estimator_for(5_500.0).cache.total_recorded == 0

    def test_same_type_boundary_is_not_mirrored(self):
        estimator = self.make()
        # Day 0 -> day 1 are both weekdays: nothing to mirror even
        # within `interval` of the boundary.
        estimator.record_departure(995.0, 1, 2, 10.0)
        estimator.record_departure(1_005.0, 1, 2, 10.0)
        assert estimator.estimator_for(500.0).cache.total_recorded == 2
        assert estimator.estimator_for(5_500.0).cache.total_recorded == 0

    def test_infinite_interval_skips_mirroring(self):
        estimator = CalendarEstimator(
            schedule=WeekSchedule(day_seconds=1000.0), interval=None
        )
        estimator.record_departure(4_995.0, 1, 2, 10.0)  # end of Friday
        assert estimator.estimator_for(500.0).cache.total_recorded == 1
        assert estimator.estimator_for(5_500.0).cache.total_recorded == 0

    def test_plugs_into_network(self):
        network = CellularNetwork(
            LinearTopology(3),
            estimator_factory=lambda cell_id: CalendarEstimator(
                schedule=WeekSchedule(day_seconds=1000.0)
            ),
        )
        station = network.station(0)
        station.record_departure(100.0, prev=1, next_cell=2, entry_time=50.0)
        assert station.estimator.cache.total_recorded == 1
        # The Eq. 5/6 path works through the calendar wrapper.
        assert station.update_target_reservation(200.0) >= 0.0
