"""Unit tests for the quadruplet cache: windows, weights, priority."""

import pytest

from repro.estimation.cache import (
    DAY_SECONDS,
    CacheConfig,
    QuadrupletCache,
)
from repro.estimation.quadruplet import HandoffQuadruplet


def quad(event_time, prev=1, next_cell=2, sojourn=30.0):
    return HandoffQuadruplet(event_time, prev, next_cell, sojourn)


class TestConfigValidation:
    def test_defaults_ok(self):
        config = CacheConfig()
        assert config.window_days == 1

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(interval=-1.0)

    def test_zero_max_per_pair_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(max_per_pair=0)

    def test_increasing_weights_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(weights=(0.5, 1.0))

    def test_w0_above_one_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(weights=(1.5,))

    def test_nonpositive_period_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(period=0.0)


class TestInfiniteInterval:
    """interval=None models the paper's stationary T_int = inf."""

    def test_all_quadruplets_active(self):
        cache = QuadrupletCache(CacheConfig(interval=None))
        for event_time in (10.0, 20.0, 30.0):
            cache.record(quad(event_time))
        active = cache.active(now=100.0, prev=1)
        assert len(active[2]) == 3

    def test_weight_is_w0(self):
        cache = QuadrupletCache(CacheConfig(interval=None, weights=(0.8, 0.4)))
        cache.record(quad(10.0))
        (weighted,) = cache.active(now=50.0, prev=1)[2]
        assert weighted.weight == 0.8

    def test_max_per_pair_keeps_most_recent(self):
        cache = QuadrupletCache(CacheConfig(interval=None, max_per_pair=2))
        cache.record(quad(1.0, sojourn=11.0))
        cache.record(quad(2.0, sojourn=12.0))
        cache.record(quad(3.0, sojourn=13.0))
        active = cache.active(now=10.0, prev=1)[2]
        sojourns = sorted(item.quadruplet.sojourn for item in active)
        assert sojourns == [12.0, 13.0]

    def test_eviction_bounds_memory(self):
        cache = QuadrupletCache(CacheConfig(interval=None, max_per_pair=5))
        for index in range(50):
            cache.record(quad(float(index)))
        assert cache.size() == 5

    def test_pairs_are_separate(self):
        cache = QuadrupletCache(CacheConfig(interval=None))
        cache.record(quad(1.0, prev=1, next_cell=2))
        cache.record(quad(2.0, prev=3, next_cell=2))
        assert set(cache.pairs()) == {(1, 2), (3, 2)}
        assert 2 in cache.active(now=10.0, prev=1)
        assert 2 in cache.active(now=10.0, prev=3)

    def test_prev_none_is_its_own_class(self):
        cache = QuadrupletCache(CacheConfig(interval=None))
        cache.record(quad(1.0, prev=None))
        assert cache.active(now=10.0, prev=None)
        assert not cache.active(now=10.0, prev=1)


class TestPeriodicWindows:
    def test_recent_event_in_window(self):
        cache = QuadrupletCache(CacheConfig(interval=3600.0))
        cache.record(quad(1000.0))
        assert cache.active(now=2000.0, prev=1)

    def test_event_outside_window_excluded(self):
        cache = QuadrupletCache(CacheConfig(interval=3600.0))
        cache.record(quad(1000.0))
        assert not cache.active(now=1000.0 + 3600.0 + 1.0, prev=1)

    def test_yesterday_same_time_in_window(self):
        cache = QuadrupletCache(CacheConfig(interval=3600.0))
        cache.record(quad(10_000.0))
        now = 10_000.0 + DAY_SECONDS
        active = cache.active(now=now, prev=1)
        assert active and active[2][0].weight == 1.0

    def test_yesterday_slightly_ahead_in_window(self):
        # Figure 3: the n=1 window extends T_int *past* now - T_day.
        cache = QuadrupletCache(CacheConfig(interval=3600.0))
        cache.record(quad(10_000.0))
        now = 10_000.0 + DAY_SECONDS - 1800.0  # event is "30 min ahead"
        assert cache.active(now=now, prev=1)

    def test_yesterday_weight_w1(self):
        cache = QuadrupletCache(
            CacheConfig(interval=3600.0, weights=(1.0, 0.5))
        )
        cache.record(quad(10_000.0))
        active = cache.active(now=10_000.0 + DAY_SECONDS, prev=1)
        assert active[2][0].weight == 0.5

    def test_beyond_window_days_excluded(self):
        cache = QuadrupletCache(
            CacheConfig(interval=3600.0, weights=(1.0, 1.0))
        )
        cache.record(quad(10_000.0))
        # Two days later with N_win-days = 1: out of every window.
        assert not cache.active(now=10_000.0 + 2 * DAY_SECONDS, prev=1)

    def test_priority_prefers_today(self):
        config = CacheConfig(interval=3600.0, max_per_pair=1)
        cache = QuadrupletCache(config)
        cache.record(quad(1000.0, sojourn=99.0))  # yesterday
        now = 1000.0 + DAY_SECONDS + 100.0
        cache_today_time = now - 600.0
        # Recorded later, inside today's window.
        cache.record(quad(cache_today_time, sojourn=11.0))
        active = cache.active(now=now, prev=1)[2]
        assert len(active) == 1
        assert active[0].quadruplet.sojourn == 11.0

    def test_priority_prefers_closer_within_same_day(self):
        config = CacheConfig(interval=3600.0, max_per_pair=1)
        cache = QuadrupletCache(config)
        now = 10_000.0
        cache.record(quad(now - 3000.0, sojourn=1.0))  # farther
        cache.record(quad(now - 100.0, sojourn=2.0))  # closer
        active = cache.active(now=now, prev=1)[2]
        assert active[0].quadruplet.sojourn == 2.0

    def test_out_of_date_entries_evicted(self):
        config = CacheConfig(interval=3600.0, weights=(1.0, 1.0))
        cache = QuadrupletCache(config)
        cache.record(quad(0.0))
        # Recording far in the future triggers time-based eviction.
        cache.record(quad(3 * DAY_SECONDS))
        assert cache.size() == 1

    def test_weekly_period_supported(self):
        week = 7 * DAY_SECONDS
        cache = QuadrupletCache(
            CacheConfig(interval=3600.0, period=week, weights=(1.0, 0.9))
        )
        cache.record(quad(50_000.0))
        assert cache.active(now=50_000.0 + week, prev=1)


class TestRecordingRules:
    def test_out_of_order_recording_rejected(self):
        cache = QuadrupletCache(CacheConfig(interval=None))
        cache.record(quad(10.0))
        with pytest.raises(ValueError):
            cache.record(quad(5.0))

    def test_total_recorded_counts_everything(self):
        cache = QuadrupletCache(CacheConfig(interval=None, max_per_pair=1))
        cache.record(quad(1.0))
        cache.record(quad(2.0))
        assert cache.total_recorded == 2
        assert cache.size() == 1

    def test_negative_sojourn_rejected(self):
        with pytest.raises(ValueError):
            HandoffQuadruplet(1.0, 1, 2, -5.0)

    def test_negative_event_time_allowed_for_imported_history(self):
        # Preloaded warm-up history is rebased so its records land at
        # t <= 0, keeping a shard's own records in time order.
        imported = HandoffQuadruplet(-1.0, 1, 2, 5.0)
        assert imported.event_time == -1.0
