"""Round-trip tests for ``QuadrupletCache.export_columns``/``preload``.

The durable state store serializes each cell's quadruplet history as
these record-order columns, so export → preload must be a lossless
round trip for every cache configuration: finite and infinite
``T_int``, birth-cell (``prev = None``) pairs, and re-capping to a
smaller ``N_quad``.
"""

import pytest

from repro.estimation.cache import CacheConfig, QuadrupletCache
from repro.estimation.quadruplet import HandoffQuadruplet


def record(cache, time, prev, next_cell, sojourn):
    cache.record(HandoffQuadruplet(time, prev, next_cell, sojourn))


class TestExportColumns:
    def test_empty_cache_exports_nothing(self):
        assert QuadrupletCache().export_columns() == {}

    def test_single_pair(self):
        cache = QuadrupletCache()
        record(cache, 10.0, 1, 2, 3.5)
        record(cache, 20.0, 1, 2, 4.5)
        assert cache.export_columns() == {
            (1, 2): ([10.0, 20.0], [3.5, 4.5])
        }

    def test_origin_rebases_times(self):
        cache = QuadrupletCache()
        record(cache, 10.0, None, 2, 3.5)
        exported = cache.export_columns(origin=100.0)
        assert exported == {(None, 2): ([-90.0], [3.5])}


class TestPreloadRoundTrip:
    def replay(self, config, exported):
        """A cache built by recording the exported history one by one."""
        cache = QuadrupletCache(config)
        rows = sorted(
            (time, prev, next_cell, sojourn)
            for (prev, next_cell), (times, sojourns) in exported.items()
            for time, sojourn in zip(times, sojourns)
        )
        for time, prev, next_cell, sojourn in rows:
            record(cache, time, prev, next_cell, sojourn)
        return cache

    def test_empty_round_trip(self):
        cache = QuadrupletCache()
        cache.preload({})
        assert cache.size() == 0
        assert cache.export_columns() == {}

    def test_finite_interval_round_trip(self):
        config = CacheConfig(interval=60.0, period=1000.0)
        source = QuadrupletCache(config)
        record(source, 10.0, None, 2, 3.0)
        record(source, 20.0, 1, 2, 4.0)
        record(source, 30.0, 1, 3, 5.0)
        exported = source.export_columns()
        loaded = QuadrupletCache(config)
        loaded.preload(exported)
        assert loaded.export_columns() == exported
        assert loaded.size() == source.size()
        assert loaded.total_recorded == source.total_recorded
        assert loaded.prev_keys() == source.prev_keys()

    def test_infinite_interval_union_columns(self):
        # T_int = None maintains, per prev, the sorted union of live
        # sojourns (the Eq. 4 denominator); preload must rebuild it.
        config = CacheConfig(interval=None)
        source = QuadrupletCache(config)
        record(source, 10.0, 1, 2, 9.0)
        record(source, 20.0, 1, 3, 1.0)
        record(source, 30.0, 1, 2, 5.0)
        record(source, 40.0, None, 2, 7.0)
        loaded = QuadrupletCache(config)
        loaded.preload(source.export_columns())
        assert loaded._union_sojourns == {1: [1.0, 5.0, 9.0], None: [7.0]}
        assert loaded._union_sojourns == source._union_sojourns
        # Selection-level equivalence at a later instant.
        assert (
            loaded.active_columns(100.0, 1).union
            == source.active_columns(100.0, 1).union
        )

    def test_preload_recaps_to_smaller_max_per_pair(self):
        source = QuadrupletCache(CacheConfig(interval=None, max_per_pair=10))
        for step in range(10):
            record(source, float(step), 1, 2, float(step))
        loaded = QuadrupletCache(CacheConfig(interval=None, max_per_pair=4))
        loaded.preload(source.export_columns())
        # Newest N_quad entries win, as record() itself would keep.
        assert loaded.export_columns() == {
            (1, 2): ([6.0, 7.0, 8.0, 9.0], [6.0, 7.0, 8.0, 9.0])
        }
        assert loaded._union_sojourns[1] == [6.0, 7.0, 8.0, 9.0]

    def test_preload_requires_empty_cache(self):
        cache = QuadrupletCache()
        record(cache, 10.0, 1, 2, 3.0)
        with pytest.raises(ValueError):
            cache.preload({(1, 3): ([1.0], [1.0])})

    def test_preload_matches_replayed_records(self):
        config = CacheConfig(interval=60.0, period=1000.0)
        source = QuadrupletCache(config)
        for step in range(50):
            record(source, step * 7.0, step % 3 or None, step % 4, 1.0 + step)
        exported = source.export_columns()
        loaded = QuadrupletCache(config)
        loaded.preload(exported)
        replayed = self.replay(config, exported)
        assert loaded.export_columns() == replayed.export_columns()
        now = 400.0
        for prev in loaded.prev_keys():
            left = loaded.active(now, prev)
            right = replayed.active(now, prev)
            assert left == right
