"""Unit tests for the F_HOE snapshot's mass queries."""

from repro.estimation.cache import WeightedQuadruplet
from repro.estimation.function import HandoffEstimationFunction
from repro.estimation.quadruplet import HandoffQuadruplet


def weighted(sojourn, weight=1.0, next_cell=2, prev=1, event_time=0.0):
    return WeightedQuadruplet(
        HandoffQuadruplet(event_time, prev, next_cell, sojourn), weight
    )


def build(mapping):
    return HandoffEstimationFunction(mapping)


def test_empty_function():
    function = build({})
    assert function.is_empty
    assert function.total_mass_above(0.0) == 0.0
    assert function.max_sojourn() == 0.0
    assert function.next_cells() == ()


def test_mass_above_counts_strictly_greater():
    function = build({2: [weighted(10.0), weighted(20.0)]})
    assert function.mass_above(2, 10.0) == 1.0
    assert function.mass_above(2, 9.99) == 2.0
    assert function.mass_above(2, 20.0) == 0.0


def test_mass_between_half_open():
    function = build({2: [weighted(10.0), weighted(20.0), weighted(30.0)]})
    # (low, high]: excludes low, includes high.
    assert function.mass_between(2, 10.0, 20.0) == 1.0
    assert function.mass_between(2, 9.0, 10.0) == 1.0
    assert function.mass_between(2, 20.0, 30.0) == 1.0
    assert function.mass_between(2, 0.0, 100.0) == 3.0


def test_mass_between_empty_interval():
    function = build({2: [weighted(10.0)]})
    assert function.mass_between(2, 10.0, 10.0) == 0.0
    assert function.mass_between(2, 20.0, 5.0) == 0.0


def test_weights_respected():
    function = build({2: [weighted(10.0, weight=0.5), weighted(20.0, 0.25)]})
    assert function.mass_above(2, 0.0) == 0.75
    assert function.mass_between(2, 5.0, 15.0) == 0.5


def test_total_mass_spans_next_cells():
    function = build(
        {
            2: [weighted(10.0, next_cell=2)],
            3: [weighted(30.0, next_cell=3)],
        }
    )
    assert function.total_mass_above(0.0) == 2.0
    assert function.total_mass_above(15.0) == 1.0
    assert function.total_mass_between(5.0, 35.0) == 2.0


def test_unknown_next_cell_zero_mass():
    function = build({2: [weighted(10.0)]})
    assert function.mass_above(99, 0.0) == 0.0
    assert function.mass_between(99, 0.0, 100.0) == 0.0


def test_max_sojourn():
    function = build(
        {
            2: [weighted(10.0, next_cell=2)],
            3: [weighted(45.0, next_cell=3)],
        }
    )
    assert function.max_sojourn() == 45.0


def test_sample_count_above_unweighted():
    function = build(
        {2: [weighted(10.0, weight=0.1), weighted(20.0, weight=0.1)]}
    )
    assert function.sample_count_above(5.0) == 2
    assert function.sample_count_above(15.0) == 1


def test_duplicate_sojourns_accumulate():
    function = build({2: [weighted(10.0), weighted(10.0), weighted(10.0)]})
    assert function.mass_above(2, 9.0) == 3.0
    assert function.mass_between(2, 9.0, 10.0) == 3.0
    assert function.mass_above(2, 10.0) == 0.0


def test_footprint_structure():
    function = build({2: [weighted(10.0), weighted(20.0)]})
    footprint = function.footprint()
    assert list(footprint) == [2]
    assert footprint[2] == [(10.0, 1.0), (20.0, 2.0)]


def test_matches_naive_computation():
    import random

    rng = random.Random(0)
    items = {
        next_cell: [
            weighted(rng.uniform(0, 100), rng.choice((0.5, 1.0)), next_cell)
            for _ in range(50)
        ]
        for next_cell in (2, 3, 4)
    }
    function = build(items)
    for low, high in [(0, 10), (5, 50), (30, 31), (90, 200)]:
        for next_cell in (2, 3, 4):
            naive = sum(
                item.weight
                for item in items[next_cell]
                if low < item.quadruplet.sojourn <= high
            )
            got = function.mass_between(next_cell, low, high)
            assert abs(got - naive) < 1e-9
        naive_above = sum(
            item.weight
            for cell_items in items.values()
            for item in cell_items
            if item.quadruplet.sojourn > low
        )
        assert abs(function.total_mass_above(low) - naive_above) < 1e-9
