"""Tests for the route-oracle Eq. 5 path (KnownPathEstimator, §7)."""

import pytest

from repro.estimation.cache import CacheConfig
from repro.estimation.estimator import KnownPathEstimator, MobilityEstimator


class FakeConnection:
    def __init__(self, bandwidth, prev_cell, cell_entry_time, route=None):
        self.bandwidth = bandwidth
        self.prev_cell = prev_cell
        self.cell_entry_time = cell_entry_time
        self.route = route


def populated(route_oracle=None):
    estimator = KnownPathEstimator(
        CacheConfig(interval=None), route_oracle=route_oracle
    )
    # Two-way history: half the mobiles go to cell 0, half to cell 2,
    # all with ~30 s sojourns.
    for index in range(50):
        estimator.record_departure(float(index), 1, 0, 30.0)
        estimator.record_departure(float(index) + 0.5, 1, 2, 30.0)
    return estimator


def test_without_oracle_behaves_like_history_only():
    estimator = populated(route_oracle=None)
    baseline = MobilityEstimator(CacheConfig(interval=None))
    for index in range(50):
        baseline.record_departure(float(index), 1, 0, 30.0)
        baseline.record_departure(float(index) + 0.5, 1, 2, 30.0)
    connections = [FakeConnection(1.0, 1, 980.0) for _ in range(5)]
    assert estimator.expected_bandwidth(
        1000.0, connections, 0, 15.0
    ) == pytest.approx(baseline.expected_bandwidth(1000.0, connections, 0, 15.0))


def test_oracle_concentrates_mass_on_known_next():
    oracle = lambda connection: connection.route
    estimator = populated(route_oracle=oracle)
    # Mobile known to head to cell 0, in the cell for 20 s already.
    toward_target = [FakeConnection(1.0, 1, 980.0, route=0)]
    away = [FakeConnection(1.0, 1, 980.0, route=2)]
    t_est = 15.0
    toward = estimator.expected_bandwidth(1000.0, toward_target, 0, t_est)
    wrong_way = estimator.expected_bandwidth(1000.0, away, 0, t_est)
    assert wrong_way == 0.0
    # The sojourn marginal covers the 30 s mass fully: p = 1.
    assert toward == pytest.approx(1.0)
    # History-only would have split the same mass 50/50.
    history_only = populated(route_oracle=None).expected_bandwidth(
        1000.0, toward_target, 0, t_est
    )
    assert history_only == pytest.approx(0.5)


def test_oracle_none_falls_back_per_connection():
    oracle = lambda connection: connection.route  # may return None
    estimator = populated(route_oracle=oracle)
    unknown = [FakeConnection(4.0, 1, 980.0, route=None)]
    value = estimator.expected_bandwidth(1000.0, unknown, 0, 15.0)
    assert value == pytest.approx(4.0 * 0.5)


def test_oracle_respects_stationary_verdict():
    oracle = lambda connection: 0
    estimator = populated(route_oracle=oracle)
    # Extant sojourn beyond all history: stationary, nothing reserved.
    lingering = [FakeConnection(1.0, 1, 900.0, route=0)]
    assert estimator.expected_bandwidth(1000.0, lingering, 0, 15.0) == 0.0


def test_oracle_zero_t_est():
    estimator = populated(route_oracle=lambda c: 0)
    connections = [FakeConnection(1.0, 1, 980.0, route=0)]
    assert estimator.expected_bandwidth(1000.0, connections, 0, 0.0) == 0.0


def test_oracle_uses_reservation_basis():
    from repro.traffic.classes import ADAPTIVE_VIDEO
    from repro.traffic.connection import Connection

    estimator = populated(route_oracle=lambda c: 0)
    connection = Connection(
        ADAPTIVE_VIDEO, 0.0, cell_id=1, prev_cell=1, cell_entry_time=980.0
    )
    value = estimator.expected_bandwidth(1000.0, [connection], 0, 15.0)
    # Adaptive video reserves its 1-BU floor, not its 4-BU full rate.
    assert value == pytest.approx(1.0)
