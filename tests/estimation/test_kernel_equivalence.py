"""Numpy-kernel vs pure-Python-kernel equivalence (property-based).

The columnar estimation core has two implementations of every batch
query: vectorized ``searchsorted`` gathers (numpy kernel) and resumable
``bisect`` walks (python kernel).  The contract is *bit-identity* — the
same floats out, not just close ones — because the simulator's cached
and naive paths are asserted metric-equal elsewhere.  These tests drive
randomized quadruplet stores and query batches through both kernels.
"""

from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import _kernel
from repro.cellular.cell import Cell
from repro.estimation.cache import CacheConfig
from repro.estimation.estimator import MobilityEstimator
from repro.traffic.classes import VOICE
from repro.traffic.connection import Connection

requires_numpy = pytest.mark.skipif(
    not _kernel.HAS_NUMPY, reason="numpy kernel not installed"
)


@contextmanager
def force_kernel(name):
    saved = _kernel._active
    _kernel._active = None
    _kernel.set_kernel(name)
    try:
        yield
    finally:
        _kernel._active = saved


sojourns = st.floats(
    min_value=0.0, max_value=10_000.0, allow_nan=False, allow_infinity=False
)
next_cells = st.integers(min_value=0, max_value=4)
observations = st.lists(
    st.tuples(sojourns, next_cells), min_size=0, max_size=60
)
query_batches = st.lists(sojourns, min_size=0, max_size=50)
windows = st.floats(
    min_value=0.0, max_value=5_000.0, allow_nan=False, allow_infinity=False
)


def build_estimator(items):
    estimator = MobilityEstimator(CacheConfig(interval=None))
    for index, (sojourn, next_cell) in enumerate(items):
        estimator.record_departure(float(index), 1, next_cell, sojourn)
    return estimator


# ----------------------------------------------------------------------
# Eq. 4 batches
# ----------------------------------------------------------------------
@requires_numpy
@given(observations, query_batches, windows, next_cells)
def test_batch_probabilities_identical_across_kernels(
    items, extants, t_est, next_cell
):
    estimator = build_estimator(items)
    with force_kernel("numpy"):
        vectorized = estimator.handoff_probability_batch(
            1e6, 1, extants, next_cell, t_est
        )
    with force_kernel("python"):
        fallback = estimator.handoff_probability_batch(
            1e6, 1, extants, next_cell, t_est
        )
    assert vectorized == fallback


@requires_numpy
@given(observations, query_batches, windows, next_cells)
def test_batch_probabilities_match_scalar_queries(
    items, extants, t_est, next_cell
):
    estimator = build_estimator(items)
    with force_kernel("numpy"):
        batched = estimator.handoff_probability_batch(
            1e6, 1, extants, next_cell, t_est
        )
    scalar = [
        estimator.handoff_probability(1e6, 1, extant, next_cell, t_est)
        for extant in extants
    ]
    assert batched == scalar


@requires_numpy
@given(query_batches, windows, next_cells)
def test_empty_store_batch_is_all_zero(extants, t_est, next_cell):
    estimator = MobilityEstimator(CacheConfig(interval=None))
    for kernel in ("numpy", "python"):
        with force_kernel(kernel):
            result = estimator.handoff_probability_batch(
                1e6, 1, extants, next_cell, t_est
            )
        assert result == [0.0] * len(extants)


@requires_numpy
@given(sojourns, query_batches, windows)
def test_single_sample_store_across_kernels(sojourn, extants, t_est):
    estimator = MobilityEstimator(CacheConfig(interval=None))
    estimator.record_departure(0.0, 1, 2, sojourn)
    results = {}
    for kernel in ("numpy", "python"):
        with force_kernel(kernel):
            results[kernel] = estimator.handoff_probability_batch(
                1e6, 1, extants, 2, t_est
            )
    assert results["numpy"] == results["python"]
    # A single observation yields all-or-nothing probabilities.
    for extant, probability in zip(extants, results["numpy"]):
        if extant >= sojourn or t_est <= 0:
            assert probability == 0.0  # no mass above, or empty window
        else:
            assert probability in (0.0, 1.0)


# ----------------------------------------------------------------------
# Eq. 5 grouped batches (vectorized contributions vs resumable walk)
# ----------------------------------------------------------------------
@requires_numpy
@settings(max_examples=40)
@given(
    observations,
    st.lists(
        st.floats(min_value=0.0, max_value=1_000.0), min_size=1, max_size=70
    ),
    windows,
    next_cells,
)
def test_batch_contributions_arrays_matches_walk(
    items, entry_times, t_est, target
):
    import numpy as np

    snapshot = build_estimator(items).function_for(1e6, 1)
    now = 1_000.0
    entries = sorted(entry_times)
    keys = list(range(len(entries)))
    bases = [1.0 + (key % 3) for key in keys]
    walked = snapshot.batch_contributions(
        target,
        [
            (keys[i], now - entries[i], bases[i])
            for i in range(len(keys) - 1, -1, -1)
        ],
        t_est,
    )
    vectorized: dict[int, float] = {}
    snapshot.batch_contributions_arrays(
        np,
        target,
        keys,
        now - np.asarray(entries, dtype=np.float64),
        np.asarray(bases, dtype=np.float64),
        t_est,
        vectorized,
    )
    assert vectorized == walked


@requires_numpy
@settings(max_examples=25)
@given(st.integers(min_value=0, max_value=2**31), windows)
def test_grouped_expected_bandwidth_identical_across_kernels(seed, t_est):
    """Grouped Eq. 5 over a Cell's columnar buckets, both kernels vs naive.

    Group sizes straddle the vectorization cutoff so both the numpy
    gather path and the small-group walk are exercised.
    """
    import random

    rng = random.Random(seed)
    estimator = MobilityEstimator(CacheConfig(interval=None))
    for index in range(rng.randrange(0, 120)):
        estimator.record_departure(
            float(index),
            rng.choice((None, 1, 2)),
            rng.choice((0, 2, 3)),
            rng.uniform(0.0, 90.0),
        )
    cell = Cell(5, capacity=10_000.0)
    connections = []
    for _ in range(rng.randrange(0, 90)):
        connection = Connection(
            VOICE,
            0.0,
            5,
            prev_cell=rng.choice((None, 1, 2)),
            cell_entry_time=rng.uniform(0.0, 1_000.0),
        )
        cell.attach(connection)
        connections.append(connection)
    now = 1_000.0
    naive = estimator.expected_bandwidth(now, connections, 0, t_est)
    results = {}
    for kernel in ("numpy", "python"):
        with force_kernel(kernel):
            results[kernel] = estimator.expected_bandwidth(
                now,
                connections,
                0,
                t_est,
                groups=cell.reservation_groups(),
            )
    assert results["numpy"] == naive
    assert results["python"] == naive
