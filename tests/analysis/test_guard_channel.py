"""Tests for the Hong–Rappaport analytic guard-channel model.

Includes a cross-validation of the simulator's static scheme against
the closed-form chain — an independent correctness check on the whole
arrival/hand-off/accounting pipeline.
"""

import pytest

from repro.analysis.guard_channel import (
    analytic_static_baseline,
    road_model_rates,
    solve_guard_channel,
)
from repro.simulation.scenarios import stationary
from repro.simulation.simulator import CellularSimulator


class TestChainSolver:
    def test_probabilities_normalised(self):
        result = solve_guard_channel(20, 2, 0.1, 0.05, 60.0)
        assert sum(result.occupancy) == pytest.approx(1.0)
        assert all(p >= 0 for p in result.occupancy)

    def test_no_guard_reduces_to_erlang_b(self):
        # With G=0, blocking == dropping == Erlang B at the total load.
        result = solve_guard_channel(10, 0, 0.1, 0.05, 40.0)
        a = (0.1 + 0.05) * 40.0
        erlang = 1.0
        for k in range(1, 11):
            erlang = a * erlang / (k + a * erlang)
        assert result.blocking_probability == pytest.approx(erlang)
        assert result.dropping_probability == pytest.approx(erlang)

    def test_guard_prioritises_handoffs(self):
        without = solve_guard_channel(50, 0, 0.5, 0.2, 60.0)
        with_guard = solve_guard_channel(50, 5, 0.5, 0.2, 60.0)
        assert (
            with_guard.dropping_probability < without.dropping_probability
        )
        assert (
            with_guard.blocking_probability > without.blocking_probability
        )

    def test_full_guard_blocks_all_new_calls(self):
        result = solve_guard_channel(10, 10, 0.5, 0.0, 60.0)
        assert result.blocking_probability == pytest.approx(1.0)
        # No hand-off traffic either: the cell stays empty.
        assert result.occupancy[0] == pytest.approx(1.0)

    def test_monotone_in_load(self):
        results = [
            solve_guard_channel(30, 3, rate, rate / 2, 60.0)
            for rate in (0.05, 0.1, 0.2, 0.4)
        ]
        blocking = [r.blocking_probability for r in results]
        dropping = [r.dropping_probability for r in results]
        assert blocking == sorted(blocking)
        assert dropping == sorted(dropping)

    def test_validation(self):
        with pytest.raises(ValueError):
            solve_guard_channel(0, 0, 0.1, 0.1, 60.0)
        with pytest.raises(ValueError):
            solve_guard_channel(10, 11, 0.1, 0.1, 60.0)
        with pytest.raises(ValueError):
            solve_guard_channel(10, 1, -0.1, 0.1, 60.0)
        with pytest.raises(ValueError):
            solve_guard_channel(10, 1, 0.1, 0.1, 0.0)


class TestRoadModelRates:
    def test_rates_scale_with_load(self):
        low = road_model_rates(60.0, 100.0)
        high = road_model_rates(120.0, 100.0)
        assert high.new_call_rate == pytest.approx(2 * low.new_call_rate)
        assert high.handoff_rate > low.handoff_rate

    def test_faster_mobiles_more_handoffs(self):
        slow = road_model_rates(100.0, 50.0)
        fast = road_model_rates(100.0, 100.0)
        assert fast.handoff_rate > slow.handoff_rate
        assert fast.mean_channel_holding < slow.mean_channel_holding

    def test_holding_below_both_timescales(self):
        rates = road_model_rates(100.0, 100.0)
        assert rates.mean_channel_holding < 36.0  # crossing time
        assert rates.mean_channel_holding < 120.0  # lifetime


class TestCrossValidation:
    """The simulator's static scheme vs the closed form."""

    @pytest.mark.parametrize("load", [100.0, 200.0])
    def test_blocking_probability_agrees(self, load):
        analytic = analytic_static_baseline(load)
        config = stationary(
            "static",
            offered_load=load,
            voice_ratio=1.0,
            high_mobility=True,
            duration=1200.0,
            warmup=200.0,
            seed=17,
        )
        simulated = CellularSimulator(config).run()
        assert simulated.blocking_probability == pytest.approx(
            analytic.blocking_probability, abs=0.05
        )

    def test_dropping_probability_same_order(self):
        """P_HD agrees in order of magnitude only.

        The analytic chain assumes exponential cell-residence times; the
        simulator's are near-deterministic (constant speed over 1 km).
        The paper's §6 criticises exactly this exponential assumption —
        the analytic model *over*-estimates drops.
        """
        analytic = analytic_static_baseline(200.0)
        config = stationary(
            "static", offered_load=200.0, duration=1500.0, warmup=200.0,
            seed=17,
        )
        simulated = CellularSimulator(config).run()
        assert simulated.dropping_probability > 0.0
        ratio = (
            analytic.dropping_probability / simulated.dropping_probability
        )
        assert 0.5 < ratio < 5.0
