"""Unit tests for interval estimates and replication pooling."""

import pytest

from repro.analysis.stats import (
    blocking_estimate,
    dropping_estimate,
    replicate,
    wilson_interval,
)
from repro.simulation.scenarios import stationary
from repro.simulation.simulator import CellularSimulator


class TestWilson:
    def test_midpoint_estimate(self):
        estimate = wilson_interval(50, 100)
        assert estimate.point == 0.5
        assert estimate.low < 0.5 < estimate.high
        assert 0.08 < estimate.high - estimate.low < 0.22

    def test_zero_successes_interval_excludes_negative(self):
        estimate = wilson_interval(0, 1000)
        assert estimate.point == 0.0
        assert estimate.low == 0.0
        assert 0.0 < estimate.high < 0.01

    def test_all_successes(self):
        estimate = wilson_interval(100, 100)
        assert estimate.point == 1.0
        assert estimate.high == 1.0
        assert estimate.low > 0.95

    def test_zero_trials_is_vacuous(self):
        estimate = wilson_interval(0, 0)
        assert (estimate.low, estimate.high) == (0.0, 1.0)

    def test_interval_narrows_with_trials(self):
        small = wilson_interval(5, 100)
        large = wilson_interval(500, 10_000)
        assert (large.high - large.low) < (small.high - small.low)

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(-1, 3)

    def test_str_format(self):
        rendered = str(wilson_interval(1, 100))
        assert "[" in rendered and "]" in rendered


class TestResultEstimates:
    def test_estimates_cover_point_values(self):
        config = stationary("static", 200.0, duration=120.0, seed=2)
        result = CellularSimulator(config).run()
        blocking = blocking_estimate(result)
        dropping = dropping_estimate(result)
        assert blocking.low <= result.blocking_probability <= blocking.high
        assert dropping.low <= result.dropping_probability <= dropping.high
        assert blocking.trials == result.total_new_requests


class TestReplication:
    def test_pooled_counts(self):
        config = stationary("static", 150.0, duration=100.0)
        summary = replicate(config, seeds=(1, 2, 3))
        assert summary.replications == 3
        assert summary.blocking.trials == sum(
            result.total_new_requests for result in summary.results
        )
        assert 0.0 <= summary.dropping.point <= 1.0

    def test_distinct_seeds_produce_distinct_runs(self):
        config = stationary("static", 150.0, duration=100.0)
        summary = replicate(config, seeds=(1, 2))
        first, second = summary.results
        assert first.events_processed != second.events_processed

    def test_mean_of_metric(self):
        config = stationary("static", 150.0, duration=100.0)
        summary = replicate(config, seeds=(1, 2))
        mean = summary.mean_of(lambda result: result.blocking_probability)
        values = [r.blocking_probability for r in summary.results]
        assert mean == pytest.approx(sum(values) / 2)

    def test_empty_seeds_rejected(self):
        config = stationary("static", 150.0, duration=100.0)
        with pytest.raises(ValueError):
            replicate(config, seeds=())
