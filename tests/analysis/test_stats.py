"""Unit tests for interval estimates and replication pooling."""

import math

import pytest

from repro.analysis.stats import (
    batch_means,
    batch_means_from_hourly,
    blocking_estimate,
    dropping_estimate,
    replicate,
    t_quantile,
    wilson_interval,
)
from repro.simulation.scenarios import stationary
from repro.simulation.simulator import CellularSimulator


class TestWilson:
    def test_midpoint_estimate(self):
        estimate = wilson_interval(50, 100)
        assert estimate.point == 0.5
        assert estimate.low < 0.5 < estimate.high
        assert 0.08 < estimate.high - estimate.low < 0.22

    def test_zero_successes_interval_excludes_negative(self):
        estimate = wilson_interval(0, 1000)
        assert estimate.point == 0.0
        assert estimate.low == 0.0
        assert 0.0 < estimate.high < 0.01

    def test_all_successes(self):
        estimate = wilson_interval(100, 100)
        assert estimate.point == 1.0
        assert estimate.high == 1.0
        assert estimate.low > 0.95

    def test_zero_trials_is_vacuous(self):
        estimate = wilson_interval(0, 0)
        assert (estimate.low, estimate.high) == (0.0, 1.0)

    def test_interval_narrows_with_trials(self):
        small = wilson_interval(5, 100)
        large = wilson_interval(500, 10_000)
        assert (large.high - large.low) < (small.high - small.low)

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(-1, 3)

    def test_str_format(self):
        rendered = str(wilson_interval(1, 100))
        assert "[" in rendered and "]" in rendered


class TestResultEstimates:
    def test_estimates_cover_point_values(self):
        config = stationary("static", 200.0, duration=120.0, seed=2)
        result = CellularSimulator(config).run()
        blocking = blocking_estimate(result)
        dropping = dropping_estimate(result)
        assert blocking.low <= result.blocking_probability <= blocking.high
        assert dropping.low <= result.dropping_probability <= dropping.high
        assert blocking.trials == result.total_new_requests


class TestTQuantile:
    #: Two-sided 95% critical values, Student-t tables.
    REFERENCE_95 = {
        1: 12.706,
        2: 4.303,
        3: 3.182,
        5: 2.571,
        10: 2.228,
        30: 2.042,
        100: 1.984,
    }

    @pytest.mark.parametrize("dof,expected", sorted(REFERENCE_95.items()))
    def test_matches_tables_at_95(self, dof, expected):
        assert t_quantile(0.95, dof) == pytest.approx(expected, rel=2e-3)

    def test_99_level_dof_5(self):
        assert t_quantile(0.99, 5) == pytest.approx(4.032, rel=5e-3)

    def test_approaches_normal_quantile(self):
        assert t_quantile(0.95, 10_000) == pytest.approx(1.96, abs=1e-2)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            t_quantile(1.0, 5)
        with pytest.raises(ValueError):
            t_quantile(0.0, 5)
        with pytest.raises(ValueError):
            t_quantile(0.95, 0)


class TestBatchMeans:
    def test_known_small_sample(self):
        estimate = batch_means([1.0, 2.0, 3.0, 4.0])
        assert estimate.mean == pytest.approx(2.5)
        # s = sqrt(5/3), half-width = t_{.975,3} * s / 2
        expected = t_quantile(0.95, 3) * math.sqrt(5.0 / 3.0) / 2.0
        assert estimate.half_width == pytest.approx(expected)
        assert estimate.covers(2.5)
        assert not estimate.covers(100.0)

    def test_single_batch_is_infinite(self):
        estimate = batch_means([0.25])
        assert estimate.mean == 0.25
        assert math.isinf(estimate.half_width)
        assert estimate.covers(1e9)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            batch_means([])

    def test_constant_batches_collapse(self):
        estimate = batch_means([0.5] * 8)
        assert estimate.half_width == pytest.approx(0.0)

    def test_from_hourly_buckets(self):
        # Hourly buckets sized to 50 simulated seconds each; bucket 0 is
        # exactly the warm-up (buckets start at t=0).
        config = stationary(
            "static",
            200.0,
            duration=250.0,
            warmup=50.0,
            seed=2,
            hourly_stats=True,
            day_seconds=24.0 * 50.0,
        )
        result = CellularSimulator(config).run()
        blocking, dropping = batch_means_from_hourly(
            result, skip_buckets=1
        )
        assert blocking.batches == len(result.hourly) - 1
        assert 0.0 <= blocking.mean <= 1.0
        assert 0.0 <= dropping.mean <= 1.0

    def test_from_hourly_requires_buckets(self):
        config = stationary("static", 150.0, duration=100.0)
        result = CellularSimulator(config).run()
        with pytest.raises(ValueError):
            batch_means_from_hourly(result)


class TestReplication:
    def test_pooled_counts(self):
        config = stationary("static", 150.0, duration=100.0)
        summary = replicate(config, seeds=(1, 2, 3))
        assert summary.replications == 3
        assert summary.blocking.trials == sum(
            result.total_new_requests for result in summary.results
        )
        assert 0.0 <= summary.dropping.point <= 1.0

    def test_distinct_seeds_produce_distinct_runs(self):
        config = stationary("static", 150.0, duration=100.0)
        summary = replicate(config, seeds=(1, 2))
        first, second = summary.results
        assert first.events_processed != second.events_processed

    def test_mean_of_metric(self):
        config = stationary("static", 150.0, duration=100.0)
        summary = replicate(config, seeds=(1, 2))
        mean = summary.mean_of(lambda result: result.blocking_probability)
        values = [r.blocking_probability for r in summary.results]
        assert mean == pytest.approx(sum(values) / 2)

    def test_empty_seeds_rejected(self):
        config = stationary("static", 150.0, duration=100.0)
        with pytest.raises(ValueError):
            replicate(config, seeds=())
