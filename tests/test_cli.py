"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_list_experiments(capsys):
    code, out, _err = run_cli(capsys, "list-experiments")
    assert code == 0
    assert "fig8+9" in out
    assert "table3" in out


def test_run_prints_report(capsys):
    code, out, _err = run_cli(
        capsys,
        "run", "--scheme", "static", "--load", "120",
        "--duration", "60", "--seed", "3",
    )
    assert code == 0
    assert "P_CB" in out and "P_HD" in out
    assert "Cell" in out
    assert out.count("\n") > 12  # per-cell table present


def test_run_one_way_and_adaptive_flags(capsys):
    code, out, _err = run_cli(
        capsys,
        "run", "--scheme", "AC3", "--load", "150", "--rvo", "0.5",
        "--duration", "60", "--one-way", "--adaptive-qos",
    )
    assert code == 0
    assert "scheme=adaptive-AC3" in out


def test_sweep_prints_one_row_per_load(capsys):
    code, out, _err = run_cli(
        capsys,
        "sweep", "--scheme", "static", "--loads", "60,120",
        "--duration", "60",
    )
    assert code == 0
    lines = [line for line in out.splitlines() if line.strip()]
    assert len(lines) == 4  # header + rule + 2 loads
    assert lines[2].startswith("60")


def test_experiment_command(capsys):
    code, out, _err = run_cli(
        capsys, "experiment", "table3", "--duration", "60"
    )
    assert code == 0
    assert "table3" in out
    assert "(AC1)" in out and "(AC3)" in out


def test_unknown_experiment_fails_cleanly(capsys):
    code, _out, err = run_cli(capsys, "experiment", "fig99")
    assert code == 2
    assert "unknown experiment" in err


def test_invalid_rvo_fails_cleanly(capsys):
    code, _out, err = run_cli(
        capsys, "run", "--rvo", "1.5", "--duration", "60"
    )
    assert code == 2
    assert "error" in err


def test_run_telemetry_summary_and_exports(capsys, tmp_path):
    prom = tmp_path / "run.prom"
    snapshot = tmp_path / "run.json"
    code, out, _err = run_cli(
        capsys,
        "run", "--scheme", "AC3", "--load", "150", "--duration", "80",
        "--telemetry",
        "--prom-out", str(prom), "--telemetry-json", str(snapshot),
    )
    assert code == 0
    assert "telemetry: run_id=" in out
    assert "events fired:" in out
    text = prom.read_text(encoding="utf-8")
    assert "repro_des_events_fired" in text
    import json

    data = json.loads(snapshot.read_text(encoding="utf-8"))
    assert data["counters"]["des.events_fired"] > 0


def test_run_without_telemetry_prints_no_summary(capsys):
    code, out, _err = run_cli(
        capsys, "run", "--load", "120", "--duration", "60"
    )
    assert code == 0
    assert "telemetry:" not in out


def test_run_trace_jsonl(capsys, tmp_path):
    journal = tmp_path / "trace.jsonl"
    code, _out, _err = run_cli(
        capsys,
        "run", "--load", "120", "--duration", "60",
        "--trace-jsonl", str(journal),
    )
    assert code == 0
    import json

    lines = journal.read_text(encoding="utf-8").splitlines()
    assert lines
    assert json.loads(lines[0])["kind"] == "admitted"


def test_sweep_merges_worker_telemetry(capsys, tmp_path):
    prom = tmp_path / "sweep.prom"
    code, out, _err = run_cli(
        capsys,
        "sweep", "--loads", "60,120", "--duration", "60",
        "--workers", "2", "--telemetry", "--prom-out", str(prom),
    )
    assert code == 0
    # Two worker runs merged: both run ids in the provenance line.
    summary = [
        line for line in out.splitlines()
        if line.startswith("telemetry: run_id=")
    ]
    assert summary and summary[0].count("+") == 1
    assert "repro_des_events_fired" in prom.read_text(encoding="utf-8")


def test_progress_flag_emits_heartbeat_and_keeps_metrics(capsys):
    code_quiet, out_quiet, _ = run_cli(
        capsys, "run", "--load", "120", "--duration", "80", "--seed", "2"
    )
    code_progress, out_progress, err = run_cli(
        capsys,
        "run", "--load", "120", "--duration", "80", "--seed", "2",
        "--progress", "0.0001",
    )
    assert code_quiet == code_progress == 0
    # The report (a pure function of the metrics) is unchanged by
    # progress reporting; heartbeats go to stderr.
    assert out_quiet == out_progress
    assert "events/s" in err


class TestHotspotValidation:
    """--hotspots must reject bad segments with errors naming them."""

    def test_valid_spec_parses(self):
        from repro.cli import _parse_hotspots

        assert _parse_hotspots(None) == ()
        assert _parse_hotspots("") == ()
        assert _parse_hotspots("1,2,3.0; 4,5,2.5,1.5;") == (
            (1.0, 2.0, 3.0),
            (4.0, 5.0, 2.5, 1.5),
        )

    def test_non_numeric_segment_is_named(self):
        from repro.cli import _parse_hotspots

        with pytest.raises(ValueError, match=r"'1,two,3' does not parse"):
            _parse_hotspots("0,0,2;1,two,3")

    def test_wrong_arity_is_named(self):
        from repro.cli import _parse_hotspots

        with pytest.raises(ValueError, match=r"got '1,2'"):
            _parse_hotspots("1,2")
        with pytest.raises(ValueError, match=r"got '1,2,3,4,5'"):
            _parse_hotspots("1,2,3,4,5")

    def test_gain_and_radius_must_be_positive(self):
        from repro.cli import _parse_hotspots

        with pytest.raises(ValueError, match=r"gain.*'1,2,0'"):
            _parse_hotspots("1,2,0")
        with pytest.raises(ValueError, match=r"radius.*'1,2,3,-1'"):
            _parse_hotspots("1,2,3,-1")

    def test_out_of_grid_cell_is_named_with_bounds(self):
        from repro.cli import _parse_hotspots

        with pytest.raises(
            ValueError,
            match=r"\(12,3\) in '12,3,2' is outside the 12x12 grid"
            r" \(rows 0\.\.11, cols 0\.\.11\)",
        ):
            _parse_hotspots("5,5,2;12,3,2", grid=(12, 12))
        # In-grid cells pass the same check.
        assert _parse_hotspots("11,11,2", grid=(12, 12)) == ((11.0, 11.0, 2.0),)

    def test_cli_rejects_bad_hotspots_before_running(self, capsys):
        code = main([
            "run", "--shards", "2", "--hex", "6x6", "--duration", "60",
            "--hotspots", "9,9,2",
        ])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err
        assert "'9,9,2'" in captured.err and "6x6 grid" in captured.err
