"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_list_experiments(capsys):
    code, out, _err = run_cli(capsys, "list-experiments")
    assert code == 0
    assert "fig8+9" in out
    assert "table3" in out


def test_run_prints_report(capsys):
    code, out, _err = run_cli(
        capsys,
        "run", "--scheme", "static", "--load", "120",
        "--duration", "60", "--seed", "3",
    )
    assert code == 0
    assert "P_CB" in out and "P_HD" in out
    assert "Cell" in out
    assert out.count("\n") > 12  # per-cell table present


def test_run_one_way_and_adaptive_flags(capsys):
    code, out, _err = run_cli(
        capsys,
        "run", "--scheme", "AC3", "--load", "150", "--rvo", "0.5",
        "--duration", "60", "--one-way", "--adaptive-qos",
    )
    assert code == 0
    assert "scheme=adaptive-AC3" in out


def test_sweep_prints_one_row_per_load(capsys):
    code, out, _err = run_cli(
        capsys,
        "sweep", "--scheme", "static", "--loads", "60,120",
        "--duration", "60",
    )
    assert code == 0
    lines = [line for line in out.splitlines() if line.strip()]
    assert len(lines) == 4  # header + rule + 2 loads
    assert lines[2].startswith("60")


def test_experiment_command(capsys):
    code, out, _err = run_cli(
        capsys, "experiment", "table3", "--duration", "60"
    )
    assert code == 0
    assert "table3" in out
    assert "(AC1)" in out and "(AC3)" in out


def test_unknown_experiment_fails_cleanly(capsys):
    code, _out, err = run_cli(capsys, "experiment", "fig99")
    assert code == 2
    assert "unknown experiment" in err


def test_invalid_rvo_fails_cleanly(capsys):
    code, _out, err = run_cli(
        capsys, "run", "--rvo", "1.5", "--duration", "60"
    )
    assert code == 2
    assert "error" in err
