"""Property-based tests for the window controller and cell accounting."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cellular.cell import CapacityError, Cell
from repro.core.window import (
    EstimationWindowController,
    StepPolicy,
    WindowControllerConfig,
)

handoff_sequences = st.lists(st.booleans(), min_size=0, max_size=400)
targets = st.sampled_from([0.01, 0.02, 0.05, 0.2])
max_sojourns = st.floats(min_value=0.0, max_value=500.0)


@given(handoff_sequences, targets, max_sojourns)
def test_t_est_always_within_bounds(drops, target, max_sojourn):
    controller = EstimationWindowController(
        WindowControllerConfig(target_drop_probability=target)
    )
    for dropped in drops:
        controller.on_handoff(dropped, max_sojourn)
        assert controller.t_est >= controller.config.min_window
        assert controller.t_est <= max(
            max_sojourn, controller.config.initial_window,
            controller.config.min_window,
        )


@given(handoff_sequences, targets)
def test_counters_are_consistent(drops, target):
    controller = EstimationWindowController(
        WindowControllerConfig(target_drop_probability=target)
    )
    for dropped in drops:
        controller.on_handoff(dropped, 100.0)
    assert controller.total_handoffs == len(drops)
    assert controller.total_drops == sum(drops)
    assert controller.drops <= controller.total_drops
    assert controller.handoffs <= controller.total_handoffs
    assert controller.observation_window % controller.reference == 0


@given(handoff_sequences)
def test_every_increase_coincides_with_a_drop(drops):
    controller = EstimationWindowController(WindowControllerConfig())
    increases = 0
    for dropped in drops:
        before = controller.t_est
        controller.on_handoff(dropped, 1_000.0)
        if controller.t_est > before:
            increases += 1
            assert dropped
    assert increases == sum(
        1 for adjustment in controller.adjustments if adjustment.increased
    )


@settings(max_examples=50)
@given(
    handoff_sequences,
    st.sampled_from(list(StepPolicy)),
)
def test_step_policies_respect_bounds_too(drops, policy):
    controller = EstimationWindowController(
        WindowControllerConfig(step_policy=policy)
    )
    for dropped in drops:
        controller.on_handoff(dropped, 50.0)
        assert 1.0 <= controller.t_est <= 50.0


bandwidths = st.sampled_from([1.0, 4.0])


@settings(max_examples=50)
@given(st.lists(st.tuples(bandwidths, st.booleans()), max_size=120))
def test_cell_accounting_invariant(operations):
    """Random attach/detach interleavings keep 0 <= used <= C."""
    from repro.traffic.classes import VIDEO, VOICE
    from repro.traffic.connection import Connection

    cell = Cell(0, 100.0)
    attached = []
    for bandwidth, is_attach in operations:
        if is_attach:
            connection = Connection(
                VOICE if bandwidth == 1.0 else VIDEO, 0.0, 0
            )
            try:
                cell.attach(connection)
                attached.append(connection)
            except CapacityError:
                assert cell.used_bandwidth + bandwidth > cell.capacity
        elif attached:
            cell.detach(attached.pop())
        assert 0.0 <= cell.used_bandwidth <= cell.capacity + 1e-9
        assert cell.used_bandwidth == sum(c.bandwidth for c in attached)
