"""Property-based tests across the admission-control schemes.

The three schemes differ only in which cells participate in the test,
so on *identical* network states their decisions are ordered:
AC2 admits ⇒ AC3 admits ⇒ AC1 admits (each drops constraints).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cellular.network import CellularNetwork
from repro.cellular.topology import LinearTopology
from repro.core.admission import AC1, AC2, AC3
from repro.estimation.cache import CacheConfig
from repro.traffic.classes import VIDEO, VOICE
from repro.traffic.connection import Connection

cell_loads = st.lists(
    st.integers(min_value=0, max_value=24),  # video connections: 0..96 BUs
    min_size=4,
    max_size=4,
)
histories = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),  # observing cell
        st.integers(min_value=0, max_value=3),  # next cell
        st.floats(min_value=1.0, max_value=120.0),  # sojourn
    ),
    max_size=25,
)
entry_ages = st.floats(min_value=0.0, max_value=100.0)


def build_network(loads, history, t_est_values, now=1000.0):
    network = CellularNetwork(
        LinearTopology(4),
        capacity=100.0,
        cache_config=CacheConfig(interval=None),
    )
    for index, (observer, next_cell, sojourn) in enumerate(history):
        if next_cell == observer:
            next_cell = (observer + 1) % 4
        network.station(observer).estimator.record_departure(
            float(index), None, next_cell, sojourn
        )
    for cell_id, videos in enumerate(loads):
        for offset in range(videos):
            connection = Connection(
                VIDEO,
                start_time=0.0,
                cell_id=cell_id,
                prev_cell=None,
                cell_entry_time=now - 10.0 - offset,
            )
            network.cell(cell_id).attach(connection)
    for cell_id, t_est in enumerate(t_est_values):
        network.station(cell_id).window.t_est = t_est
    return network


@settings(max_examples=60, deadline=None)
@given(
    cell_loads,
    histories,
    st.lists(
        st.floats(min_value=1.0, max_value=60.0), min_size=4, max_size=4
    ),
)
def test_admission_strictness_ordering(loads, history, t_est_values):
    now = 1000.0
    decisions = {}
    for name, policy in (("AC1", AC1()), ("AC2", AC2()), ("AC3", AC3())):
        network = build_network(loads, history, t_est_values, now)
        decisions[name] = policy.admit_new(network, 0, VOICE.bandwidth, now)
    if decisions["AC2"].admitted:
        assert decisions["AC3"].admitted
    if decisions["AC3"].admitted:
        assert decisions["AC1"].admitted
    # Complexity ordering always holds.
    assert decisions["AC1"].calculations == 1
    assert decisions["AC2"].calculations == 3
    assert 1 <= decisions["AC3"].calculations <= 3


@settings(max_examples=40, deadline=None)
@given(cell_loads, histories)
def test_reservation_nonnegative_and_bounded(loads, history):
    network = build_network(loads, history, [30.0] * 4)
    for station in network.stations:
        reservation = station.update_target_reservation(1000.0)
        assert reservation >= 0.0
        # Eq. 6 cannot exceed the total bandwidth of the neighbours'
        # connections (every p_h <= 1).
        bound = sum(
            neighbor.cell.used_bandwidth
            for neighbor in station.neighbor_stations()
        )
        assert reservation <= bound + 1e-9


@settings(max_examples=40, deadline=None)
@given(cell_loads, histories)
def test_reservation_monotone_in_t_est(loads, history):
    """B_r is non-decreasing in the estimation window (paper §4.1)."""
    previous = -1.0
    for t_est in (1.0, 10.0, 40.0, 200.0):
        network = build_network(loads, history, [t_est] * 4)
        reservation = network.station(0).update_target_reservation(1000.0)
        assert reservation >= previous - 1e-9
        previous = reservation
