"""Property-based tests for DES, topology and profile substrates."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cellular.topology import HexTopology, LinearTopology
from repro.des import Engine
from repro.traffic.profiles import DayProfile


@settings(max_examples=60)
@given(st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=60))
def test_engine_fires_in_nondecreasing_time_order(times):
    engine = Engine()
    fired = []
    for time in times:
        engine.call_at(time, lambda t=time: fired.append(t))
    engine.run()
    assert fired == sorted(times)
    assert len(fired) == len(times)


@settings(max_examples=40)
@given(
    st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=40),
    st.data(),
)
def test_cancelled_events_never_fire(times, data):
    engine = Engine()
    fired = []
    events = [
        engine.call_at(time, lambda t=time: fired.append(t))
        for time in times
    ]
    cancelled = set()
    for index, event in enumerate(events):
        if data.draw(st.booleans()):
            event.cancel()
            cancelled.add(index)
    engine.run()
    expected = sorted(
        time for index, time in enumerate(times) if index not in cancelled
    )
    assert fired == expected


@given(st.integers(min_value=2, max_value=50), st.booleans())
def test_linear_adjacency_symmetric_and_irreflexive(num_cells, ring):
    topology = LinearTopology(num_cells, ring=ring)
    for cell_id in range(num_cells):
        neighbors = topology.neighbors(cell_id)
        assert cell_id not in neighbors
        assert len(set(neighbors)) == len(neighbors)
        for neighbor in neighbors:
            assert cell_id in topology.neighbors(neighbor)


@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=2, max_value=8),
    st.booleans(),
)
def test_hex_adjacency_symmetric_and_bounded(half_rows, cols, wrap):
    # Wrapped hex grids require an even row count (enforced by the
    # constructor), so generate even rows and test both layouts.
    rows = 2 * half_rows
    topology = HexTopology(rows, cols, wrap=wrap)
    for cell_id in range(topology.num_cells):
        neighbors = topology.neighbors(cell_id)
        assert cell_id not in neighbors
        assert len(set(neighbors)) == len(neighbors)
        assert len(neighbors) <= 6
        for neighbor in neighbors:
            assert cell_id in topology.neighbors(neighbor)


@given(
    st.integers(min_value=2, max_value=40),
    st.floats(min_value=0.0, max_value=200.0),
)
def test_position_maps_into_valid_cell(num_cells, position):
    topology = LinearTopology(num_cells)  # ring wraps any position
    cell = topology.cell_of_position(position)
    assert 0 <= cell < num_cells
    low, high = topology.cell_span_km(cell)
    wrapped = topology.wrap_position(position)
    assert low <= wrapped < high or (wrapped == high == topology.road_length_km)


profile_points = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=23.99),
        st.floats(min_value=0.0, max_value=1e4),
    ),
    min_size=1,
    max_size=12,
    unique_by=lambda point: round(point[0], 3),
)


@given(profile_points, st.floats(min_value=0.0, max_value=72.0))
def test_profile_interpolation_stays_within_value_range(points, hour):
    profile = DayProfile(points)
    values = [value for _hour, value in points]
    result = profile.value_at_hour(hour)
    assert min(values) - 1e-6 <= result <= max(values) + 1e-6


@given(profile_points)
def test_profile_hits_breakpoints_exactly(points):
    profile = DayProfile(points)
    for hour, value in points:
        assert abs(profile.value_at_hour(hour) - value) < 1e-9
