"""Property-based kernel equivalence: python == numpy (== numba).

The kernel contract (:mod:`repro._kernel`): every backend — the pure
bisect fallback, the searchsorted-batched numpy path, and the jitted
numba path — produces *bit-identical* results, for scalar queries,
batched per-supplier evaluation, and the cross-cell grouped flush.
Hypothesis drives randomized quadruplet histories and connection
populations through all available backends and requires exact float
equality everywhere.

The numba leg is exercised only when numba is importable (it is an
optional extra); everything else runs on every install, with numpy
legs skipped on numpy-free installs.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._kernel import HAS_NUMPY, has_numba, kernel_name, set_kernel
from repro.cellular.network import CellularNetwork
from repro.cellular.topology import LinearTopology
from repro.estimation.cache import CacheConfig
from repro.simulation.config import SimulationConfig
from repro.simulation.simulator import CellularSimulator
from repro.traffic.classes import VOICE
from repro.traffic.connection import Connection


def available_kernels() -> list[str]:
    kernels = ["python"]
    if HAS_NUMPY:
        kernels.append("numpy")
        if has_numba():
            kernels.append("numba")
    return kernels


@pytest.fixture(autouse=True)
def _restore_kernel():
    before = kernel_name()
    yield
    set_kernel(before)


sojourns = st.floats(
    min_value=0.1, max_value=1_000.0, allow_nan=False, allow_infinity=False
)
prev_cells = st.sampled_from([None, 0, 2])
history = st.lists(st.tuples(sojourns, prev_cells), min_size=0, max_size=40)
entry_offsets = st.lists(
    st.floats(min_value=0.0, max_value=90.0,
              allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=25,
)


def build_network(items, offsets, grouped_flush=True):
    network = CellularNetwork(
        LinearTopology(5),
        cache_config=CacheConfig(interval=None),
        grouped_flush=grouped_flush,
    )
    station = network.station(1)
    for index, (sojourn, prev) in enumerate(items):
        station.estimator.record_departure(float(index), prev, 0, sojourn)
    rng = random.Random(42)
    for offset in offsets:
        network.cell(1).attach(
            Connection(
                VOICE, 0.0, 1,
                prev_cell=rng.choice([None, 0, 2]),
                cell_entry_time=100.0 - offset,
            )
        )
    network.station(0).window.t_est = 10.0
    return network


@settings(max_examples=25, deadline=None)
@given(history, entry_offsets)
def test_reservation_identical_across_kernels(items, offsets):
    """Eq. 6 per-supplier evaluation is bit-identical per backend."""
    results = {}
    for kernel in available_kernels():
        set_kernel(kernel)
        network = build_network(items, offsets)
        results[kernel] = network.station(0).update_target_reservation(
            100.0
        )
    values = set(results.values())
    assert len(values) == 1, results


@settings(max_examples=25, deadline=None)
@given(history, entry_offsets)
def test_grouped_tick_identical_across_kernels(items, offsets):
    """The cross-cell grouped flush is bit-identical per backend."""
    results = {}
    for kernel in available_kernels():
        set_kernel(kernel)
        network = build_network(items, offsets)
        for cell_id in (0, 2):
            network.mark_reservation_dirty(cell_id)
        network.flush_reservation_tick(100.0)
        results[kernel] = (
            network.cell(0).reserved_target,
            network.cell(2).reserved_target,
        )
    values = set(results.values())
    assert len(values) == 1, results


def _run_metrics(kernel: str, grouped_flush: bool = True):
    config = SimulationConfig(
        scheme="AC3",
        offered_load=120.0,
        duration=120.0,
        seed=5,
        kernel=kernel,
        grouped_flush=grouped_flush,
    )
    return CellularSimulator(config).run().metrics_key()


def test_whole_run_metrics_key_parity_across_kernels():
    """A full AC3 run lands on one metrics_key whatever the backend."""
    keys = {
        kernel: _run_metrics(kernel) for kernel in available_kernels()
    }
    reference = keys["python"]
    for kernel, key in keys.items():
        assert key == reference, kernel


def test_whole_run_metrics_key_parity_grouped_flush_toggle():
    """grouped_flush on/off cannot change a run's metrics_key."""
    assert _run_metrics("auto", grouped_flush=True) == _run_metrics(
        "auto", grouped_flush=False
    )


def test_numba_skipped_with_notice_when_absent():
    if has_numba():
        pytest.skip("numba installed: the backend runs in the tests above")
    with pytest.raises(RuntimeError, match="numba"):
        set_kernel("numba")
