"""Property-based tests for the estimation stack (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimation.cache import CacheConfig, QuadrupletCache
from repro.estimation.estimator import MobilityEstimator
from repro.estimation.function import HandoffEstimationFunction
from repro.estimation.quadruplet import HandoffQuadruplet

sojourns = st.floats(
    min_value=0.0, max_value=10_000.0, allow_nan=False, allow_infinity=False
)
next_cells = st.integers(min_value=0, max_value=5)

observation = st.tuples(sojourns, next_cells)
observations = st.lists(observation, min_size=0, max_size=60)


def build_estimator(items):
    estimator = MobilityEstimator(CacheConfig(interval=None))
    for index, (sojourn, next_cell) in enumerate(items):
        estimator.record_departure(float(index), 1, next_cell, sojourn)
    return estimator


@given(observations, sojourns, sojourns, next_cells)
def test_probability_in_unit_interval(items, extant, t_est, next_cell):
    estimator = build_estimator(items)
    probability = estimator.handoff_probability(
        1e6, 1, extant, next_cell, t_est
    )
    assert 0.0 <= probability <= 1.0
    assert not math.isnan(probability)


@given(observations, sojourns, sojourns)
def test_probabilities_sum_to_at_most_one(items, extant, t_est):
    estimator = build_estimator(items)
    total = sum(
        estimator.handoff_probabilities(1e6, 1, extant, t_est).values()
    )
    assert total <= 1.0 + 1e-9


@given(observations, sojourns, next_cells)
def test_monotone_in_t_est(items, extant, next_cell):
    estimator = build_estimator(items)
    previous = 0.0
    for t_est in (1.0, 10.0, 100.0, 1_000.0, 100_000.0):
        value = estimator.handoff_probability(
            1e6, 1, extant, next_cell, t_est
        )
        assert value >= previous - 1e-12
        previous = value


@given(observations, sojourns)
def test_stationary_iff_no_mass_beyond_extant(items, extant):
    estimator = build_estimator(items)
    has_longer = any(sojourn > extant for sojourn, _next in items)
    assert estimator.is_stationary(1e6, 1, extant) == (not has_longer)


@given(observations, sojourns, sojourns)
def test_full_window_probabilities_sum_to_one(items, extant, _unused):
    """With t_est covering all mass, the conditional masses sum to 1."""
    estimator = build_estimator(items)
    if estimator.is_stationary(1e6, 1, extant):
        return
    total = sum(
        estimator.handoff_probabilities(1e6, 1, extant, 1e9).values()
    )
    assert abs(total - 1.0) < 1e-9


@given(observations)
def test_max_sojourn_matches_history(items):
    estimator = build_estimator(items)
    expected = max((sojourn for sojourn, _ in items), default=0.0)
    assert estimator.max_sojourn(1e6) == expected


@given(observations, sojourns, sojourns)
def test_union_mass_equals_sum_of_parts(items, low, span):
    snapshot = HandoffEstimationFunction(
        build_estimator(items).cache.active(1e6, 1)
    )
    high = low + abs(span)
    per_cell = sum(
        snapshot.mass_between(next_cell, low, high)
        for next_cell in snapshot.next_cells()
    )
    assert abs(per_cell - snapshot.total_mass_between(low, high)) < 1e-6
    per_cell_above = sum(
        snapshot.mass_above(next_cell, low)
        for next_cell in snapshot.next_cells()
    )
    assert abs(per_cell_above - snapshot.total_mass_above(low)) < 1e-6


@settings(max_examples=30)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=200_000.0),
            sojourns,
        ),
        min_size=0,
        max_size=40,
    ),
    st.floats(min_value=0.0, max_value=400_000.0),
)
def test_cache_selection_never_exceeds_quota(events, now):
    config = CacheConfig(interval=3600.0, max_per_pair=5)
    cache = QuadrupletCache(config)
    for event_time, sojourn in sorted(events):
        cache.record(HandoffQuadruplet(event_time, 1, 2, sojourn))
    active = cache.active(now, 1)
    for items in active.values():
        assert len(items) <= config.max_per_pair
        for item in items:
            assert item.weight in config.weights
