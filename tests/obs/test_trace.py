"""Tests for the Chrome trace-event span collector."""

import json

import pytest

import repro.obs.trace as trace_module
from repro.obs.trace import (
    NullTraceCollector,
    TraceCollector,
    begin_trace,
    get_tracer,
    merge_traces,
    set_tracing_enabled,
    span_names,
    tracing_enabled,
    write_trace,
)


class TestTraceCollector:
    def test_span_records_complete_event(self):
        tracer = TraceCollector(run_id="cafe", pid=2)
        with tracer.span("epoch.run", epoch=3):
            pass
        (event,) = tracer.events()
        assert event["name"] == "epoch.run"
        assert event["ph"] == "X"
        assert event["pid"] == 2
        assert event["dur"] >= 0
        assert event["args"] == {"epoch": 3, "run_id": "cafe"}

    def test_spans_nest_and_order_by_start(self):
        tracer = TraceCollector()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        # Inner exits first, so it is recorded first; ts still orders
        # outer before inner.
        names = [event["name"] for event in tracer.events()]
        assert names == ["inner", "outer"]
        inner, outer = tracer.events()
        assert outer["ts"] <= inner["ts"]

    def test_instant_marker(self):
        tracer = TraceCollector()
        tracer.instant("worker.start", index=1)
        (event,) = tracer.events()
        assert event["ph"] == "i"
        assert event["args"] == {"index": 1}

    def test_max_events_degrades_to_counted_drop(self):
        tracer = TraceCollector(max_events=2)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.events()) == 2
        assert tracer.dropped == 3

    def test_rejects_bad_cap(self):
        with pytest.raises(ValueError):
            TraceCollector(max_events=0)


class TestNullCollector:
    def test_null_records_nothing(self):
        tracer = NullTraceCollector()
        with tracer.span("anything", epoch=1):
            pass
        tracer.instant("marker")
        assert tracer.events() is None
        assert not tracer.enabled


class TestMergeTraces:
    def test_sorts_by_ts_then_pid(self):
        merged = merge_traces(
            [
                [{"ts": 2.0, "pid": 1}, {"ts": 5.0, "pid": 1}],
                [{"ts": 2.0, "pid": 0}, {"ts": 1.0, "pid": 0}],
            ]
        )
        assert [(event["ts"], event["pid"]) for event in merged] == [
            (1.0, 0),
            (2.0, 0),
            (2.0, 1),
            (5.0, 1),
        ]

    def test_skips_disabled_contributors(self):
        assert merge_traces([None, []]) is None
        merged = merge_traces([None, [{"ts": 1.0}]])
        assert merged == [{"ts": 1.0}]


class TestWriteTrace:
    def test_perfetto_envelope(self, tmp_path):
        tracer = TraceCollector(pid=0)
        with tracer.span("epoch.run"):
            pass
        target = write_trace(
            tmp_path / "trace.json",
            tracer.events(),
            process_names={0: "shard 0"},
        )
        payload = json.loads(target.read_text())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert events[0] == {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": "shard 0"},
        }
        assert events[1]["name"] == "epoch.run"

    def test_span_names_ignores_metadata(self):
        events = [
            {"name": "process_name", "ph": "M"},
            {"name": "a", "ph": "X"},
            {"name": "b", "ph": "X"},
            {"name": "marker", "ph": "i"},
        ]
        assert span_names(events) == {"a", "b"}
        assert span_names(None) == set()


class TestSelection:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        trace_module._enabled = None
        trace_module._active = None
        assert not tracing_enabled()
        assert isinstance(get_tracer(), NullTraceCollector)

    def test_env_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        trace_module._enabled = None
        assert tracing_enabled()
        assert isinstance(begin_trace("cafe"), TraceCollector)

    def test_explicit_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        trace_module._enabled = None
        set_tracing_enabled(False)
        assert isinstance(begin_trace(), NullTraceCollector)

    def test_begin_trace_installs_the_active_collector(self):
        tracer = begin_trace("cafe", enabled=True, pid=7)
        assert get_tracer() is tracer
        assert tracer.pid == 7
