"""Tests for the heartbeat progress reporter."""

import io

import pytest

from repro.des import Engine
from repro.obs.progress import ProgressReporter


def _run_engine(engine, events=500):
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < events:
            engine.call_in(1.0, tick)

    engine.call_in(1.0, tick)
    return tick


class TestProgressReporter:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            ProgressReporter(Engine(), duration=100.0, interval=0.0)

    def test_emits_via_engine_heartbeat(self):
        engine = Engine()
        stream = io.StringIO()
        reporter = ProgressReporter(
            engine, duration=500.0, interval=1e-9,
            label="test", stream=stream,
        )
        _run_engine(engine)
        engine.run(heartbeat=reporter.beat, heartbeat_events=100)
        reporter.final()
        output = stream.getvalue()
        assert reporter.beats >= 2  # several heartbeats plus the final
        assert "[test]" in output
        assert "events/s" in output
        assert "done:" in output

    def test_wall_throttling(self):
        engine = Engine()
        stream = io.StringIO()
        reporter = ProgressReporter(
            engine, duration=500.0, interval=3600.0, stream=stream,
        )
        _run_engine(engine)
        engine.run(heartbeat=reporter.beat, heartbeat_events=10)
        # Interval far above the run's wall time: every beat throttled.
        assert reporter.beats == 0
        assert stream.getvalue() == ""
        reporter.final()
        assert reporter.beats == 1
        assert "done:" in stream.getvalue()

    def test_heartbeat_does_not_change_event_count(self):
        plain = Engine()
        _run_engine(plain)
        plain.run()
        observed = Engine()
        reporter = ProgressReporter(
            observed, duration=500.0, interval=1e-9, stream=io.StringIO(),
        )
        _run_engine(observed)
        observed.run(heartbeat=reporter.beat, heartbeat_events=7)
        assert observed.events_processed == plain.events_processed
        assert observed.now == plain.now

    def test_heartbeat_cadence_validation(self):
        engine = Engine()
        from repro.des.engine import SimulationError

        with pytest.raises(SimulationError):
            engine.run(heartbeat=lambda: None, heartbeat_events=0)
