"""Tests for the structured logging layer."""

import io
import json
import logging

import pytest

from repro.obs.logs import (
    configure_logging,
    get_logger,
    parse_level_spec,
    set_run_id,
)


class TestLevelSpec:
    def test_root_only(self):
        assert parse_level_spec("debug") == (logging.DEBUG, {})

    def test_root_and_overrides(self):
        root, overrides = parse_level_spec("info,des=debug,window=warning")
        assert root == logging.INFO
        assert overrides == {
            "repro.des": logging.DEBUG,
            "repro.window": logging.WARNING,
        }

    def test_qualified_names_kept(self):
        _root, overrides = parse_level_spec("info,repro.trace=error")
        assert overrides == {"repro.trace": logging.ERROR}

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            parse_level_spec("loud")


class TestJsonLines:
    def test_structured_record(self):
        stream = io.StringIO()
        configure_logging(spec="info", json_lines=True, stream=stream)
        set_run_id("run123")
        get_logger("des").info("heartbeat", extra={"events": 42})
        record = json.loads(stream.getvalue().strip())
        assert record["msg"] == "heartbeat"
        assert record["logger"] == "repro.des"
        assert record["level"] == "info"
        assert record["events"] == 42
        assert record["run_id"] == "run123"
        assert isinstance(record["ts"], float)

    def test_human_format_renders_extras(self):
        stream = io.StringIO()
        configure_logging(spec="info", json_lines=False, stream=stream)
        get_logger("window").info("T_est adjusted", extra={"t_est": 3.0})
        line = stream.getvalue()
        assert "repro.window" in line
        assert "T_est adjusted" in line
        assert "t_est=3.0" in line

    def test_subsystem_level_filtering(self):
        stream = io.StringIO()
        configure_logging(
            spec="warning,des=debug", json_lines=True, stream=stream
        )
        get_logger("des").debug("visible")
        get_logger("window").info("hidden")
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["msg"] == "visible"

    def test_reconfigure_replaces_handler(self):
        first = io.StringIO()
        second = io.StringIO()
        configure_logging(spec="info", json_lines=True, stream=first)
        configure_logging(spec="info", json_lines=True, stream=second)
        get_logger("des").info("once")
        assert first.getvalue() == ""
        assert len(second.getvalue().strip().splitlines()) == 1

    def test_env_spec_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "error")
        stream = io.StringIO()
        configure_logging(json_lines=True, stream=stream)
        get_logger("des").warning("suppressed")
        get_logger("des").error("kept")
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["level"] == "error"
