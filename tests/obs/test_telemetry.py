"""Tests for the telemetry registry and its no-op twin."""

import pytest

import repro.obs.telemetry as telemetry_module
from repro.obs.telemetry import (
    DEFAULT_BUCKETS,
    Histogram,
    NullTelemetry,
    Telemetry,
    begin_run,
    get_telemetry,
    merge_snapshots,
    new_run_id,
    set_telemetry_enabled,
    telemetry_enabled,
)


class TestInstruments:
    def test_counter_and_gauge(self):
        telemetry = Telemetry()
        counter = telemetry.counter("des.events")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        gauge = telemetry.gauge("des.heap")
        gauge.set(17)
        assert gauge.value == 17.0

    def test_labelled_series_are_distinct(self):
        telemetry = Telemetry()
        hit = telemetry.counter("memo", outcome="hit")
        miss = telemetry.counter("memo", outcome="miss")
        assert hit is not miss
        hit.inc()
        snapshot = telemetry.snapshot()
        assert snapshot["counters"]['memo{outcome="hit"}'] == 1
        assert snapshot["counters"]['memo{outcome="miss"}'] == 0

    def test_get_or_create_returns_same_handle(self):
        telemetry = Telemetry()
        assert telemetry.counter("x") is telemetry.counter("x")
        assert telemetry.histogram("h") is telemetry.histogram("h")

    def test_histogram_bucket_edges_inclusive(self):
        histogram = Histogram(edges=(1.0, 4.0, 16.0))
        # Prometheus `le` semantics: upper bounds are inclusive.
        for value in (0.5, 1.0):
            histogram.observe(value)
        histogram.observe(4.0)
        histogram.observe(4.1)
        histogram.observe(100.0)  # above the last edge -> +Inf bucket
        assert histogram.counts == [2, 1, 1, 1]
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(0.5 + 1.0 + 4.0 + 4.1 + 100.0)

    def test_histogram_default_buckets(self):
        histogram = Histogram()
        assert histogram.edges == DEFAULT_BUCKETS
        assert len(histogram.counts) == len(DEFAULT_BUCKETS) + 1

    def test_histogram_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            Histogram(edges=())
        with pytest.raises(ValueError):
            Histogram(edges=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(edges=(1.0, 1.0))

    def test_timer_accumulates(self):
        telemetry = Telemetry()
        timer = telemetry.timer("section")
        with timer:
            pass
        with timer:
            pass
        assert timer.count == 2
        assert timer.seconds >= 0.0


class TestNullTelemetry:
    def test_shared_noops(self):
        null = NullTelemetry()
        assert null.counter("a") is null.counter("b")
        null.counter("a").inc(100)
        assert null.counter("a").value == 0.0
        null.gauge("g").set(5)
        assert null.gauge("g").value == 0.0
        null.histogram("h").observe(3)
        with null.timer("t"):
            pass
        assert null.snapshot() is None

    def test_disabled_flag(self):
        assert NullTelemetry.enabled is False
        assert Telemetry.enabled is True


class TestSnapshotMerge:
    def _snapshot(self, events, heap, rows):
        telemetry = Telemetry(run_id=new_run_id())
        telemetry.counter("events").inc(events)
        telemetry.gauge("heap").set(heap)
        histogram = telemetry.histogram("rows", buckets=(2.0, 8.0))
        for row in rows:
            histogram.observe(row)
        timer = telemetry.timer("run")
        timer.seconds += 1.5
        timer.count += 1
        return telemetry.snapshot()

    def test_merge_sums_counters_and_histograms(self):
        merged = merge_snapshots(
            [self._snapshot(10, 5, [1, 9]), self._snapshot(32, 3, [4])]
        )
        assert merged["counters"]["events"] == 42
        assert merged["gauges"]["heap"] == 5  # max, not sum
        assert merged["histograms"]["rows"]["counts"] == [1, 1, 1]
        assert merged["histograms"]["rows"]["count"] == 3
        assert merged["timers"]["run"]["seconds"] == pytest.approx(3.0)
        assert merged["timers"]["run"]["count"] == 2
        assert merged["run_id"].count("+") == 1

    def test_merge_keeps_all_negative_gauges(self):
        # max-merge must seed from the first contribution, not from an
        # implicit 0.0 — otherwise all-negative gauges collapse to 0.
        merged = merge_snapshots(
            [self._snapshot(1, -9.0, []), self._snapshot(1, -5.0, [])]
        )
        assert merged["gauges"]["heap"] == -5.0

    def test_merge_sums_histogram_buckets_elementwise(self):
        merged = merge_snapshots(
            [self._snapshot(0, 0, [1, 1, 9]), self._snapshot(0, 0, [1, 4])]
        )
        histogram = merged["histograms"]["rows"]
        assert histogram["counts"] == [3, 1, 1]
        assert histogram["count"] == 5
        assert histogram["sum"] == pytest.approx(16.0)

    def test_merge_skips_none(self):
        snapshot = self._snapshot(7, 1, [])
        merged = merge_snapshots([None, snapshot, None])
        assert merged["counters"]["events"] == 7
        assert merge_snapshots([None, None]) is None
        assert merge_snapshots([]) is None

    def test_merge_rejects_mismatched_buckets(self):
        telemetry = Telemetry()
        telemetry.histogram("rows", buckets=(1.0, 2.0)).observe(1)
        first = telemetry.snapshot()
        other = Telemetry()
        other.histogram("rows", buckets=(5.0, 10.0)).observe(1)
        with pytest.raises(ValueError):
            merge_snapshots([first, other.snapshot()])


class TestSingleton:
    def test_begin_run_installs_registry(self):
        registry = begin_run(run_id="abc", enabled=True)
        assert registry is get_telemetry()
        assert registry.enabled
        assert registry.run_id == "abc"
        disabled = begin_run(enabled=False)
        assert disabled is get_telemetry()
        assert not disabled.enabled

    def test_set_enabled_controls_default(self):
        set_telemetry_enabled(True)
        assert telemetry_enabled()
        assert begin_run().enabled
        set_telemetry_enabled(False)
        assert not telemetry_enabled()
        assert not begin_run().enabled

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        telemetry_module._enabled = None  # force re-resolution
        assert telemetry_enabled()
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        telemetry_module._enabled = None
        assert not telemetry_enabled()

    def test_run_ids_unique(self):
        assert new_run_id() != new_run_id()
        assert len(new_run_id()) == 12
