"""Tests for the terminal dashboard: pure render + tail-follow loop."""

import io

from repro.obs.dash import DashState, render, run_dash


def _rows():
    return [
        {
            "t": 40.0,
            "shard": 0,
            "events": 1200,
            "events_per_s": 350.0,
            "heap": 42,
            "p_cb": 0.02,
            "p_hd": 0.001,
            "util": 0.5,
            "barrier_wait_frac": 0.25,
        },
        {
            "t": 40.0,
            "shard": 1,
            "events": 1100,
            "events_per_s": 300.0,
            "heap": 40,
        },
    ]


class TestDashState:
    def test_lanes_keyed_by_shard(self):
        state = DashState()
        state.feed(_rows())
        assert sorted(state.latest) == ["s0", "s1"]
        assert state.rows_seen == 2

    def test_unsharded_lane_uses_label_then_run_id(self):
        state = DashState()
        state.feed([{"shard": None, "label": "L=200"}])
        state.feed([{"shard": None, "run_id": "cafe"}])
        assert "L=200" in state.latest
        assert "cafe" in state.latest

    def test_latest_row_wins_and_rates_accumulate(self):
        state = DashState()
        state.feed([{"shard": 0, "t": 1.0, "events_per_s": 10.0}])
        state.feed([{"shard": 0, "t": 2.0, "events_per_s": 20.0}])
        assert state.latest["s0"]["t"] == 2.0
        assert list(state.rates["s0"]) == [10.0, 20.0]


class TestRender:
    def test_frame_contains_lanes_and_totals(self):
        state = DashState()
        state.feed(_rows())
        frame = render(state)
        assert "s0" in frame and "s1" in frame
        assert "0.0200" in frame  # P_CB
        assert "25%" in frame  # barrier-wait fraction
        assert "2 lane(s), 2 samples" in frame
        assert "2,300 events" in frame

    def test_missing_metrics_render_as_dashes(self):
        state = DashState()
        state.feed([{"shard": 1, "t": 1.0}])
        lane_line = render(state).splitlines()[2]
        assert lane_line.count("-") >= 3


class TestRunDash:
    def test_once_renders_file_and_exits(self, tmp_path):
        stream = tmp_path / "series.jsonl"
        stream.write_text(
            '{"t": 1.0, "shard": 0, "events": 10, "events_per_s": 5.0}\n'
            '{"t": 2.0, "shard": 0, "events": 20, "events_per_s": 7.0}\n'
        )
        out = io.StringIO()
        code = run_dash(str(stream), follow=False, out=out, clear=False)
        assert code == 0
        assert "s0" in out.getvalue()
        assert "2 samples" in out.getvalue()

    def test_once_missing_file_is_an_error(self, tmp_path):
        code = run_dash(
            str(tmp_path / "nope.jsonl"),
            follow=False,
            out=io.StringIO(),
            clear=False,
        )
        assert code == 2

    def test_follow_timeout_bounds_the_loop(self, tmp_path):
        stream = tmp_path / "series.jsonl"
        stream.write_text('{"t": 1.0, "shard": 0}\n')
        out = io.StringIO()
        code = run_dash(
            str(stream),
            refresh=0.01,
            follow=True,
            timeout=0.05,
            out=out,
            clear=False,
        )
        assert code == 0
        assert "1 lane(s)" in out.getvalue()

    def test_tolerates_torn_last_line(self, tmp_path):
        stream = tmp_path / "series.jsonl"
        stream.write_text('{"t": 1.0, "shard": 0}\n{"t": 2.0, "sh')
        out = io.StringIO()
        code = run_dash(str(stream), follow=False, out=out, clear=False)
        assert code == 0
        assert "1 samples" in out.getvalue()
