"""Tests for the streaming time-series sampler and its plumbing."""

import io
import json

import pytest

from repro.obs.timeseries import (
    TimeSeriesSampler,
    iter_series,
    merge_series,
    read_series,
    series_summary,
    write_series,
)


class FakeEngine:
    """Just the attributes the sampler reads."""

    def __init__(self):
        self.now = 0.0
        self.events_processed = 0
        self.queue_len = 0
        self.events_cancelled = 0


def make_sampler(**kwargs):
    engine = FakeEngine()
    kwargs.setdefault("interval", 10.0)
    return engine, TimeSeriesSampler(engine, **kwargs)


class TestSamplerCadence:
    def test_requires_a_cadence(self):
        engine = FakeEngine()
        with pytest.raises(ValueError):
            TimeSeriesSampler(engine)
        with pytest.raises(ValueError):
            TimeSeriesSampler(engine, interval=-1.0)

    def test_virtual_cadence_samples_on_threshold(self):
        engine, sampler = make_sampler(interval=10.0)
        engine.now = 5.0
        sampler.maybe_sample()
        assert sampler.series() == []
        engine.now = 10.0
        engine.events_processed = 100
        sampler.maybe_sample()
        assert len(sampler.series()) == 1
        assert sampler.series()[0]["t"] == 10.0
        assert sampler.series()[0]["events"] == 100

    def test_burst_at_one_timestamp_yields_one_sample(self):
        engine, sampler = make_sampler(interval=10.0)
        engine.now = 25.0
        for _ in range(5):
            sampler.maybe_sample()
        assert len(sampler.series()) == 1
        # The next threshold advanced past *now*, not to 20.0.
        engine.now = 34.0
        sampler.maybe_sample()
        assert len(sampler.series()) == 1
        engine.now = 35.0
        sampler.maybe_sample()
        assert len(sampler.series()) == 2

    def test_due_reads_without_sampling(self):
        engine, sampler = make_sampler(interval=10.0)
        assert not sampler.due(5.0)
        assert sampler.due(10.0)
        assert sampler.series() == []
        engine.now = 10.0
        assert sampler.due()

    def test_forced_sample_carries_extra_labels(self):
        engine, sampler = make_sampler(interval=10.0)
        engine.now = 3.0
        row = sampler.sample(epoch=4, barrier_wait_frac=0.25)
        assert row["epoch"] == 4
        assert row["barrier_wait_frac"] == 0.25
        assert sampler.series() == [row]

    def test_final_appends_closing_row_and_closes_stream(self):
        stream = io.StringIO()
        engine, sampler = make_sampler(interval=10.0, stream=stream)
        engine.now = 50.0
        sampler.final()
        rows = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert rows[-1]["final"] is True
        # Not owned, so the handle stays open but is detached.
        assert sampler._stream is None


class TestSamplerRows:
    def test_ring_buffer_evicts_oldest(self):
        engine, sampler = make_sampler(interval=1.0, max_samples=3)
        for step in range(1, 6):
            engine.now = float(step)
            sampler.maybe_sample()
        series = sampler.series()
        assert len(series) == 3
        assert [row["t"] for row in series] == [3.0, 4.0, 5.0]
        assert sampler.total_samples == 5
        assert sampler.dropped == 2

    def test_stream_keeps_everything(self, tmp_path):
        target = tmp_path / "nested" / "stream.jsonl"
        engine, sampler = make_sampler(
            interval=1.0, max_samples=2, stream=target
        )
        for step in range(1, 5):
            engine.now = float(step)
            sampler.maybe_sample()
        sampler.close()
        assert len(read_series(target)) == 4
        assert len(sampler.series()) == 2

    def test_provenance_stamped(self):
        engine, sampler = make_sampler(
            interval=1.0, shard_id=3, run_id="cafe", label="L=200"
        )
        engine.now = 1.0
        sampler.maybe_sample()
        row = sampler.series()[0]
        assert row["shard"] == 3
        assert row["run_id"] == "cafe"
        assert row["label"] == "L=200"

    def test_events_per_s_is_window_delta(self):
        engine, sampler = make_sampler(interval=1.0)
        engine.now = 1.0
        engine.events_processed = 500
        sampler.maybe_sample()
        first = sampler.series()[0]
        assert first["events"] == 500
        assert first["events_per_s"] >= 0


class TestMergeSeries:
    def test_merges_and_sorts_by_time_then_shard(self):
        shard0 = [{"t": 1.0, "shard": 0}, {"t": 3.0, "shard": 0}]
        shard1 = [{"t": 1.0, "shard": 1}, {"t": 2.0, "shard": 1}]
        merged = merge_series([shard1, shard0])
        assert [(row["t"], row["shard"]) for row in merged] == [
            (1.0, 0),
            (1.0, 1),
            (2.0, 1),
            (3.0, 0),
        ]

    def test_unsharded_rows_sort_before_sharded(self):
        merged = merge_series(
            [[{"t": 1.0, "shard": 2}], [{"t": 1.0, "shard": None}]]
        )
        assert merged[0]["shard"] is None

    def test_nothing_contributed_returns_none(self):
        assert merge_series([None, [], None]) is None
        assert merge_series([]) is None

    def test_empty_shards_among_live_ones_are_skipped(self):
        # A shard that sampled nothing (short run, coarse cadence) must
        # not poison the merge.
        rows = [{"t": 1.0, "shard": 4}]
        assert merge_series([[], rows, None, []]) == rows

    def test_single_shard_passes_through_as_copies(self):
        rows = [{"t": 2.0, "shard": 0}, {"t": 1.0, "shard": 0}]
        merged = merge_series([rows])
        assert merged == sorted(rows, key=lambda row: row["t"])
        # Rows are copied, not aliased: mutating the merge must not
        # reach back into the shard's own series.
        merged[0]["t"] = 99.0
        assert rows[1]["t"] == 1.0

    def test_wall_breaks_virtual_time_ties(self):
        # Same virtual t, same shard: the wall timestamp orders the
        # rows (live-mode samples share t=engine.now across a batch).
        early = {"t": 5.0, "shard": 1, "wall": 10.0}
        late = {"t": 5.0, "shard": 1, "wall": 20.0}
        assert merge_series([[late], [early]]) == [early, late]
        # ...but shard still outranks wall.
        other_shard = {"t": 5.0, "shard": 0, "wall": 99.0}
        assert merge_series([[late], [other_shard]]) == [other_shard, late]

    def test_deterministic_under_worker_order(self):
        streams = [
            [{"t": 2.0, "shard": 0}, {"t": 4.0, "shard": 0}],
            [{"t": 1.0, "shard": 1}],
            [{"t": 2.0, "shard": 2}],
        ]
        forward = merge_series(streams)
        backward = merge_series(list(reversed(streams)))
        assert forward == backward


class TestSeriesFiles:
    def test_write_read_round_trip(self, tmp_path):
        rows = [{"t": 1.0, "shard": None}, {"t": 2.0, "shard": 0}]
        target = write_series(tmp_path / "series.jsonl", rows)
        assert read_series(target) == rows

    def test_iter_series_skips_torn_and_blank_lines(self):
        stream = io.StringIO(
            '{"t": 1.0}\n\n{"t": 2.0}\n{"t": 3.0, "events"'
        )
        assert list(iter_series(stream)) == [{"t": 1.0}, {"t": 2.0}]

    def test_iter_series_skips_non_dict_rows(self):
        stream = io.StringIO('[1, 2]\n{"t": 1.0}\n')
        assert list(iter_series(stream)) == [{"t": 1.0}]


class TestSeriesSummary:
    def test_empty_is_none(self):
        assert series_summary(None) is None
        assert series_summary([]) is None

    def test_summary_fields(self):
        rows = [
            {"t": 1.0, "shard": 0, "events_per_s": 100.0},
            {"t": 5.0, "shard": 1, "events_per_s": 900.0},
            {
                "t": 9.0,
                "shard": 1,
                "events_per_s": 300.0,
                "p_cb": 0.02,
                "p_hd": 0.001,
            },
        ]
        summary = series_summary(rows)
        assert summary["samples"] == 3
        assert summary["shards"] == [0, 1]
        assert summary["t_first"] == 1.0
        assert summary["t_last"] == 9.0
        assert summary["peak_events_per_s"] == 900.0
        assert summary["last_p_cb"] == 0.02
        assert summary["last_p_hd"] == 0.001
