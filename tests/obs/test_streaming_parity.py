"""Streaming observation must not perturb the simulation.

The PR-level invariant of the time-series sampler and the span tracer:
``metrics_key()`` is bit-identical with sampling+tracing on versus off,
for the sequential runner, the replicated runner, and the spatial
runner.  Alongside parity, these tests pin the shape of what the
streams contain: per-shard ``events_per_s`` rows and the barrier-phase
span names.
"""

from dataclasses import replace

from repro.obs.trace import span_names
from repro.simulation.replication import run_replicated
from repro.simulation.scenarios import hex_city, stationary
from repro.simulation.simulator import simulate
from repro.simulation.spatial import run_spatial


def _scenario(**overrides):
    overrides.setdefault("duration", 150.0)
    return stationary("AC3", offered_load=180.0, seed=11, **overrides)


def _observed(config):
    return replace(config, series_interval=10.0, trace=True)


def _city(**overrides):
    return hex_city(
        "AC3",
        rows=6,
        cols=6,
        offered_load=150.0,
        duration=30.0,
        seed=5,
        **overrides,
    )


class TestSequentialParity:
    def test_metrics_identical_on_and_off(self):
        off = simulate(_scenario())
        on = simulate(_observed(_scenario()))
        assert off.timeseries is None
        assert off.trace_events is None
        assert on.timeseries
        assert on.trace_events
        assert on.metrics_key() == off.metrics_key()

    def test_streams_excluded_from_metrics_key(self):
        key = simulate(_observed(_scenario())).metrics_key()
        assert "timeseries" not in key
        assert "trace_events" not in key

    def test_sequential_trace_spans(self):
        result = simulate(_observed(_scenario()))
        names = span_names(result.trace_events)
        assert "run.engine" in names
        assert "kernel.flush_tick" in names


class TestReplicatedParity:
    def test_metrics_identical_on_and_off_with_two_workers(self):
        config = _scenario(duration=300.0, warmup=100.0)
        off = run_replicated(config, replications=2, workers=2)
        on = run_replicated(
            _observed(config), replications=2, workers=2
        )
        assert on.metrics_key() == off.metrics_key()
        assert off.timeseries is None
        assert on.timeseries

    def test_worker_lanes_retagged_by_replication_index(self):
        result = run_replicated(
            _observed(_scenario(duration=300.0, warmup=100.0)),
            replications=2,
            workers=2,
        )
        assert {event["pid"] for event in result.trace_events} == {0, 1}


class TestSpatialParity:
    def test_metrics_identical_on_and_off_with_two_shards(self):
        off = run_spatial(_city(), 2, processes=False)
        on = run_spatial(_observed(_city()), 2, processes=False)
        assert on.metrics_key() == off.metrics_key()

    def test_observed_matches_single_shard_plain_run(self):
        plain = run_spatial(_city(), 1, processes=False)
        observed = run_spatial(_observed(_city()), 2, processes=False)
        assert observed.metrics_key() == plain.metrics_key()

    def test_per_shard_rows_with_rates(self):
        result = run_spatial(_observed(_city()), 2, processes=False)
        shards = {row["shard"] for row in result.timeseries}
        assert shards == {0, 1}
        assert all("events_per_s" in row for row in result.timeseries)
        assert any(
            "barrier_wait_frac" in row for row in result.timeseries
        )

    def test_barrier_phase_spans(self):
        result = run_spatial(_observed(_city()), 2, processes=False)
        names = span_names(result.trace_events)
        assert {
            "barrier.begin",
            "barrier.evaluate",
            "barrier.ship",
            "epoch.run",
        } <= names
        assert {event["pid"] for event in result.trace_events} == {0, 1}

    def test_merged_series_sorted_deterministically(self):
        result = run_spatial(_observed(_city()), 2, processes=False)
        keys = [
            (row.get("t", 0.0), row.get("shard", -1))
            for row in result.timeseries
        ]
        assert keys == sorted(keys)
