"""Tests for the Prometheus/JSON exporters."""

import json

import pytest

from repro.obs.export import parse_prometheus, snapshot_to_json, to_prometheus
from repro.obs.telemetry import Telemetry


def _sample_snapshot():
    telemetry = Telemetry(run_id="deadbeef0000")
    telemetry.counter("des.events_fired").inc(1234)
    telemetry.counter("memo", outcome="hit").inc(10)
    telemetry.counter("memo", outcome="miss").inc(4)
    telemetry.gauge("des.heap_len").set(99.5)
    histogram = telemetry.histogram("batch.rows", buckets=(2.0, 8.0))
    for value in (1, 3, 100):
        histogram.observe(value)
    timer = telemetry.timer("simulation.run")
    timer.seconds += 2.25
    timer.count += 1
    return telemetry.snapshot()


class TestToPrometheus:
    def test_counters_and_gauges(self):
        text = to_prometheus(_sample_snapshot())
        assert "# TYPE repro_des_events_fired counter" in text
        assert "repro_des_events_fired 1234" in text
        assert 'repro_memo{outcome="hit"} 10' in text
        assert "# TYPE repro_des_heap_len gauge" in text
        assert "repro_des_heap_len 99.5" in text
        assert "run_id=deadbeef0000" in text

    def test_histogram_renders_cumulative_buckets(self):
        text = to_prometheus(_sample_snapshot())
        assert 'repro_batch_rows_bucket{le="2"} 1' in text
        assert 'repro_batch_rows_bucket{le="8"} 2' in text
        assert 'repro_batch_rows_bucket{le="+Inf"} 3' in text
        assert "repro_batch_rows_sum 104" in text
        assert "repro_batch_rows_count 3" in text

    def test_timer_renders_totals(self):
        text = to_prometheus(_sample_snapshot())
        assert "repro_simulation_run_seconds_total 2.25" in text
        assert "repro_simulation_run_calls_total 1" in text

    def test_custom_prefix(self):
        text = to_prometheus(_sample_snapshot(), prefix="x_")
        assert "x_des_events_fired 1234" in text
        assert "repro_" not in text.replace("# repro telemetry", "")


class TestParsePrometheus:
    def test_round_trip(self):
        snapshot = _sample_snapshot()
        series = parse_prometheus(to_prometheus(snapshot))
        assert series["repro_des_events_fired"] == 1234
        assert series['repro_memo{outcome="hit"}'] == 10
        assert series["repro_des_heap_len"] == 99.5
        assert series['repro_batch_rows_bucket{le="+Inf"}'] == 3
        assert series["repro_simulation_run_seconds_total"] == 2.25

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is not exposition format")

    def test_skips_comments_and_blanks(self):
        assert parse_prometheus("# a comment\n\nmetric 1\n") == {
            "metric": 1.0
        }


class TestSnapshotJson:
    def test_json_round_trip(self):
        snapshot = _sample_snapshot()
        data = json.loads(snapshot_to_json(snapshot))
        assert data == snapshot
