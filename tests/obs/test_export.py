"""Tests for the Prometheus/JSON exporters."""

import json

import pytest

from repro.obs.export import parse_prometheus, snapshot_to_json, to_prometheus
from repro.obs.telemetry import Telemetry, merge_snapshots


def _sample_snapshot():
    telemetry = Telemetry(run_id="deadbeef0000")
    telemetry.counter("des.events_fired").inc(1234)
    telemetry.counter("memo", outcome="hit").inc(10)
    telemetry.counter("memo", outcome="miss").inc(4)
    telemetry.gauge("des.heap_len").set(99.5)
    histogram = telemetry.histogram("batch.rows", buckets=(2.0, 8.0))
    for value in (1, 3, 100):
        histogram.observe(value)
    timer = telemetry.timer("simulation.run")
    timer.seconds += 2.25
    timer.count += 1
    return telemetry.snapshot()


class TestToPrometheus:
    def test_counters_and_gauges(self):
        text = to_prometheus(_sample_snapshot())
        assert "# TYPE repro_des_events_fired counter" in text
        assert "repro_des_events_fired 1234" in text
        assert 'repro_memo{outcome="hit"} 10' in text
        assert "# TYPE repro_des_heap_len gauge" in text
        assert "repro_des_heap_len 99.5" in text
        assert "run_id=deadbeef0000" in text

    def test_histogram_renders_cumulative_buckets(self):
        text = to_prometheus(_sample_snapshot())
        assert 'repro_batch_rows_bucket{le="2"} 1' in text
        assert 'repro_batch_rows_bucket{le="8"} 2' in text
        assert 'repro_batch_rows_bucket{le="+Inf"} 3' in text
        assert "repro_batch_rows_sum 104" in text
        assert "repro_batch_rows_count 3" in text

    def test_timer_renders_totals(self):
        text = to_prometheus(_sample_snapshot())
        assert "repro_simulation_run_seconds_total 2.25" in text
        assert "repro_simulation_run_calls_total 1" in text

    def test_custom_prefix(self):
        text = to_prometheus(_sample_snapshot(), prefix="x_")
        assert "x_des_events_fired 1234" in text
        assert "repro_" not in text.replace("# repro telemetry", "")


class TestParsePrometheus:
    def test_round_trip(self):
        snapshot = _sample_snapshot()
        series = parse_prometheus(to_prometheus(snapshot))
        assert series["repro_des_events_fired"] == 1234
        assert series['repro_memo{outcome="hit"}'] == 10
        assert series["repro_des_heap_len"] == 99.5
        assert series['repro_batch_rows_bucket{le="+Inf"}'] == 3
        assert series["repro_simulation_run_seconds_total"] == 2.25

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is not exposition format")

    def test_skips_comments_and_blanks(self):
        assert parse_prometheus("# a comment\n\nmetric 1\n") == {
            "metric": 1.0
        }


def _shard_snapshot(shard: int, events: int):
    """One spatial shard's registry, as the workers ship it home."""
    telemetry = Telemetry(run_id=f"shard{shard:08d}")
    telemetry.counter("des.events_fired").inc(events)
    telemetry.counter("memo", outcome="hit").inc(10 * (shard + 1))
    telemetry.gauge("des.heap_len").set(float(shard))
    histogram = telemetry.histogram("batch.rows", buckets=(2.0, 8.0))
    histogram.observe(shard + 1.0)
    return telemetry.snapshot()


class TestMergedMultiShardRoundTrip:
    """Satellite of the streaming-telemetry PR: the merged snapshot of a
    multi-shard run must survive ``to_prometheus``/``parse_prometheus``
    with its summed counters intact."""

    def test_counters_sum_across_shards(self):
        merged = merge_snapshots(
            [_shard_snapshot(0, 100), _shard_snapshot(1, 250)]
        )
        series = parse_prometheus(to_prometheus(merged))
        assert series["repro_des_events_fired"] == 350
        assert series['repro_memo{outcome="hit"}'] == 30

    def test_histograms_fold_and_round_trip(self):
        merged = merge_snapshots(
            [_shard_snapshot(0, 1), _shard_snapshot(1, 1)]
        )
        series = parse_prometheus(to_prometheus(merged))
        assert series['repro_batch_rows_bucket{le="+Inf"}'] == 2
        assert series["repro_batch_rows_sum"] == 3.0

    def test_merge_skips_disabled_contributors(self):
        merged = merge_snapshots([None, _shard_snapshot(1, 42), None])
        series = parse_prometheus(to_prometheus(merged))
        assert series["repro_des_events_fired"] == 42

    def test_merge_is_order_independent(self):
        shards = [_shard_snapshot(index, 10 * index) for index in range(3)]
        forward = merge_snapshots(shards)
        backward = merge_snapshots(list(reversed(shards)))
        # Gauges keep the last writer; counters/histograms must match
        # exactly regardless of merge order.
        forward_series = parse_prometheus(to_prometheus(forward))
        backward_series = parse_prometheus(to_prometheus(backward))
        assert (
            forward_series["repro_des_events_fired"]
            == backward_series["repro_des_events_fired"]
        )
        assert (
            forward_series['repro_batch_rows_bucket{le="+Inf"}']
            == backward_series['repro_batch_rows_bucket{le="+Inf"}']
        )

    def test_nothing_contributed_merges_to_none(self):
        assert merge_snapshots([None, None]) is None


class TestSnapshotJson:
    def test_json_round_trip(self):
        snapshot = _sample_snapshot()
        data = json.loads(snapshot_to_json(snapshot))
        assert data == snapshot
