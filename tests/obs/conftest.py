"""Isolate the module-level observability state between tests.

Both :mod:`repro.obs.logs` and :mod:`repro.obs.telemetry` keep module
singletons (the installed handler, the active registry, the enabled
default); tests here mutate them freely, so save and restore around
every test to keep the rest of the suite unaffected.
"""

import logging

import pytest

import repro.obs.logs as logs_module
import repro.obs.telemetry as telemetry_module
import repro.obs.trace as trace_module


@pytest.fixture(autouse=True)
def _isolate_obs_state():
    root = logging.getLogger("repro")
    saved_logs = (
        logs_module._handler,
        logs_module._configured,
        logs_module._current_run_id,
    )
    saved_root = (root.level, root.propagate, list(root.handlers))
    saved_telemetry = (telemetry_module._enabled, telemetry_module._active)
    saved_trace = (trace_module._enabled, trace_module._active)
    manager = logging.Logger.manager
    saved_levels = {
        name: logger.level
        for name, logger in manager.loggerDict.items()
        if name.startswith("repro.") and isinstance(logger, logging.Logger)
    }
    yield
    # Per-subsystem overrides installed by configure_logging during the
    # test: restore pre-test levels, clear loggers created by the test.
    for name, logger in list(manager.loggerDict.items()):
        if name.startswith("repro.") and isinstance(logger, logging.Logger):
            logger.setLevel(saved_levels.get(name, logging.NOTSET))
    (
        logs_module._handler,
        logs_module._configured,
        logs_module._current_run_id,
    ) = saved_logs
    root.setLevel(saved_root[0])
    root.propagate = saved_root[1]
    root.handlers = saved_root[2]
    telemetry_module._enabled, telemetry_module._active = saved_telemetry
    trace_module._enabled, trace_module._active = saved_trace
