"""Observation must not perturb the simulation.

The load-bearing invariant of the observability layer: a telemetry-on
run, a telemetry-off run, and a progress-reporting run of the same
scenario produce bit-identical ``metrics_key()`` dictionaries.
"""

from repro.obs.telemetry import set_telemetry_enabled
from repro.simulation.config import SimulationConfig
from repro.simulation.runner import run_sweep
from repro.simulation.scenarios import stationary
from repro.simulation.simulator import CellularSimulator, simulate


def _scenario(**overrides):
    return stationary(
        "AC3", offered_load=180.0, duration=200.0, seed=11, **overrides
    )


class TestTelemetryParity:
    def test_metrics_identical_on_and_off(self):
        set_telemetry_enabled(False)
        off = simulate(_scenario())
        on = simulate(_scenario(telemetry=True))
        assert off.telemetry is None
        assert on.telemetry is not None
        assert on.metrics_key() == off.metrics_key()

    def test_snapshot_counters_match_result(self):
        result = simulate(_scenario(telemetry=True))
        counters = result.telemetry["counters"]
        assert counters["des.events_fired"] == result.events_processed
        attempts = sum(cell.handoff_attempts for cell in result.cells)
        drops = sum(cell.handoff_drops for cell in result.cells)
        assert (
            counters['cellular.admissions{kind="handoff",outcome="accepted"}']
            == attempts - drops
        )
        assert (
            counters['cellular.admissions{kind="handoff",outcome="dropped"}']
            == drops
        )
        assert counters["des.events_fired"] > 0
        assert (
            counters['estimation.eq4_batches{kernel="numpy"}']
            + counters['estimation.eq4_batches{kernel="python"}']
            > 0
        )

    def test_run_id_attached_and_excluded_from_key(self):
        result = simulate(_scenario(telemetry=True, run_id="fixed0run0id"))
        assert result.run_id == "fixed0run0id"
        assert result.telemetry["run_id"] == "fixed0run0id"
        key = result.metrics_key()
        assert "run_id" not in key
        assert "telemetry" not in key
        assert "wall_seconds" not in key

    def test_progress_heartbeat_does_not_change_metrics(self, capsys):
        quiet = simulate(_scenario())
        noisy = CellularSimulator(_scenario(progress_interval=1e-6)).run()
        assert noisy.metrics_key() == quiet.metrics_key()
        assert "events/s" in capsys.readouterr().err

    def test_config_defaults_off(self):
        config = SimulationConfig()
        assert config.telemetry is False
        assert config.progress_interval == 0.0
        assert config.run_id == ""


class TestSweepMerge:
    def test_worker_snapshots_ride_results(self):
        configs = [
            stationary(
                "AC3", offered_load=load, duration=120.0, seed=11,
                telemetry=True,
            )
            for load in (60.0, 120.0)
        ]
        sequential = run_sweep(configs)
        parallel = run_sweep(configs, workers=2)
        for result in parallel:
            assert result.telemetry is not None
            assert result.telemetry["counters"]["des.events_fired"] > 0
        # Pool workers return the same simulation (and telemetry
        # counters) as the in-process run.
        for seq, par in zip(sequential, parallel):
            assert seq.metrics_key() == par.metrics_key()
            assert (
                seq.telemetry["counters"] == par.telemetry["counters"]
            )
