"""CI-sized structural checks for the newer ablation experiments."""

from repro.experiments.ablations import (
    run_ablation_cdma,
    run_ablation_estimator_depth,
    run_ablation_signaling,
    run_ablation_window_steps,
    run_ablation_wired,
    run_comparison_ns,
)

SHORT = 120.0


def test_cdma_ablation_structure():
    output = run_ablation_cdma(duration=SHORT)
    table = output.tables["cdma"]
    assert [row[0] for row in table.rows] == [
        "hard hand-off", "soft capacity +10%", "soft hand-off 5s", "both",
    ]
    for row in table.rows:
        assert 0.0 <= row[1] <= 1.0
        assert 0.0 <= row[2] <= 1.0


def test_wired_ablation_structure():
    output = run_ablation_wired(duration=SHORT)
    table = output.tables["wired"]
    variants = {row[0]: row for row in table.rows}
    assert set(variants) == {
        "radio only", "best-effort backbone", "predictive backbone",
    }
    assert variants["radio only"][3] == 0  # no wired blocks without wires
    assert variants["predictive backbone"][5] <= 1.0  # max utilisation


def test_ns_comparison_structure():
    output = run_comparison_ns(duration=SHORT)
    table = output.tables["comparison"]
    assert table.rows[0][0] == "AC3 (adaptive)"
    ns_rows = [row for row in table.rows if row[0].startswith("NS")]
    assert len(ns_rows) == 4
    # NS always evaluates >= 1 distribution per test.
    for row in ns_rows:
        assert row[3] >= 1.0


def test_window_steps_covers_all_policies():
    output = run_ablation_window_steps(duration=SHORT)
    assert {row[0] for row in output.tables["step policies"].rows} == {
        "unit", "additive", "multiplicative",
    }


def test_estimator_depth_rows_match_depths():
    output = run_ablation_estimator_depth(
        depths=(5, 50), duration=SHORT
    )
    assert [row[0] for row in output.tables["history depth"].rows] == [5, 50]


def test_signaling_hops_double_under_star():
    output = run_ablation_signaling(duration=SHORT)
    for row in output.tables["signaling"].rows:
        assert row[3] >= 2 * row[2] - 1e-2
