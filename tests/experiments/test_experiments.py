"""CI-sized runs of every registered experiment.

These use tiny horizons: they check structure (series present, values
plausible), not statistical agreement — EXPERIMENTS.md records the
full-scale numbers.
"""

import pytest

from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.sweeps import (
    run_fig07_static,
    run_fig08_fig09_ac3,
    run_fig12_fig13_comparison,
)
from repro.experiments.celltables import run_table2, run_table3
from repro.experiments.timevarying import run_fig14
from repro.experiments.traces import run_fig10_fig11

SHORT = 120.0
LOADS = (100.0, 300.0)


def test_registry_covers_every_paper_artifact():
    for name in (
        "fig7", "fig8+9", "fig10+11", "fig12+13", "fig14",
        "table2", "table3",
    ):
        assert name in EXPERIMENTS


def test_unknown_experiment_rejected():
    with pytest.raises(ValueError):
        run_experiment("fig99")


def test_fig07_structure():
    output = run_fig07_static(
        loads=LOADS, voice_ratios=(1.0,), duration=SHORT
    )
    names = [series.name for series in output.series]
    assert names == ["PCB Rvo=1", "PHD Rvo=1"]
    for series in output.series:
        assert [x for x, _ in series.points] == list(LOADS)
        assert all(0.0 <= y <= 1.0 for _, y in series.points)


def test_fig08_09_share_one_sweep():
    fig8, fig9 = run_fig08_fig09_ac3(
        loads=LOADS, voice_ratios=(1.0,), duration=SHORT
    )
    assert fig8.experiment_id == "fig8"
    assert fig9.experiment_id == "fig9"
    assert {series.name for series in fig9.series} == {"Br Rvo=1", "Bu Rvo=1"}
    reservation = fig9.series_by_name("Br Rvo=1").points
    assert all(value >= 0.0 for _, value in reservation)


def test_fig12_13_cover_three_schemes():
    fig12, fig13 = run_fig12_fig13_comparison(loads=(200.0,), duration=SHORT)
    assert len(fig12.series) == 6
    ncalc = {
        series.name: series.points[0][1] for series in fig13.series
    }
    assert ncalc["Ncalc AC1"] == pytest.approx(1.0)
    assert ncalc["Ncalc AC2"] == pytest.approx(3.0)
    assert 1.0 <= ncalc["Ncalc AC3"] <= 3.0


def test_fig10_11_traces():
    fig10, fig11 = run_fig10_fig11(duration=SHORT)
    assert any(series.name.startswith("Test") for series in fig10.series)
    assert any(series.name.startswith("Br") for series in fig10.series)
    assert len(fig11.series) == 2
    for series in fig11.series:
        assert all(0.0 <= value <= 1.0 for _, value in series.points)


def test_table2_contains_both_schemes():
    output = run_table2(duration=SHORT)
    assert set(output.tables) == {"(AC1)", "(AC3)"}
    table = output.tables["(AC3)"]
    assert table.headers == ["Cell", "PCB", "PHD", "Test", "Br", "Bu"]
    assert len(table.rows) == 10
    assert [row[0] for row in table.rows] == list(range(1, 11))


def test_table3_first_cell_no_drops():
    output = run_table3(duration=SHORT)
    for scheme in ("(AC1)", "(AC3)"):
        first_row = output.tables[scheme].rows[0]
        assert first_row[2] == 0.0  # PHD at cell <1>


def test_fig14_structure():
    output = run_fig14(schemes=("AC3",), days=1.0, time_compression=288.0)
    names = {series.name for series in output.series}
    assert {"profile speed", "profile Lo", "PCB AC3", "PHD AC3",
            "La AC3"} <= names
    assert len(output.series_by_name("profile speed").points) == 24
