"""Unit tests for the report rendering layer."""

import pytest

from repro.experiments.report import (
    ExperimentOutput,
    Series,
    Table,
    probability_series,
)


def test_table_renders_aligned_columns():
    table = Table(headers=["a", "bb"], rows=[[1, 2.5], ["long-cell", 3]])
    rendered = table.render()
    lines = rendered.splitlines()
    assert lines[0].startswith("a")
    assert "---" in lines[1]
    assert "long-cell" in lines[3]
    # Every row padded to the same width.
    assert len({len(line) for line in lines if line.strip()}) == 1


def test_table_formats_small_floats_scientifically():
    table = Table(headers=["v"], rows=[[0.00123]])
    assert "1.230e-03" in table.render()


def test_table_formats_zero_plainly():
    table = Table(headers=["v"], rows=[[0.0]])
    assert "e-" not in table.render()


def test_series_render_contains_points():
    series = Series("PCB", [(60.0, 0.1), (100.0, 0.2)])
    rendered = series.render(x_label="load", y_label="PCB")
    assert "[PCB]" in rendered
    assert "60" in rendered and "0.2" in rendered


def test_probability_series_coerces_floats():
    series = probability_series("x", [(60, 1), (100, 0)])
    assert series.points == [(60.0, 1.0), (100.0, 0.0)]


def test_output_render_sections():
    output = ExperimentOutput(
        "fig1",
        "A title",
        parameters={"duration": 10},
        series=[Series("s", [(1.0, 2.0)])],
        tables={"t": Table(["h"], [[1]])},
        notes=["something"],
    )
    rendered = output.render()
    assert "=== fig1: A title ===" in rendered
    assert "duration=10" in rendered
    assert "[s]" in rendered
    assert "[t]" in rendered
    assert "note: something" in rendered


def test_series_by_name():
    output = ExperimentOutput(
        "fig1", "t", series=[Series("a", []), Series("b", [(1.0, 1.0)])]
    )
    assert output.series_by_name("b").points == [(1.0, 1.0)]
    with pytest.raises(KeyError):
        output.series_by_name("c")
