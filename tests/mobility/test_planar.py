"""Tests for the planar hex mobility model (real 2-D geometry)."""

import math
import random

import pytest

from repro.cellular.base_station import EXIT_CELL
from repro.cellular.topology import HexTopology
from repro.mobility.planar import (
    UNIT_CELL_RADIUS,
    HexGeometry,
    PlanarHexModel,
)
from repro.mobility.speed import ConstantSpeedSampler, UniformSpeedSampler


def make_model(rows=4, cols=5, speed=100.0, **kwargs):
    geometry = HexGeometry(HexTopology(rows, cols, wrap=False))
    return PlanarHexModel(
        geometry, ConstantSpeedSampler(speed), **kwargs
    )


class TestGeometry:
    def test_wrapped_grid_rejected(self):
        with pytest.raises(ValueError):
            HexGeometry(HexTopology(4, 4, wrap=True))

    def test_bad_radius(self):
        with pytest.raises(ValueError):
            HexGeometry(HexTopology(3, 3), cell_radius_km=0.0)

    def test_neighbor_centers_equidistant(self):
        geometry = HexGeometry(HexTopology(5, 5))
        expected = geometry.neighbor_distance()
        for cell_id in range(geometry.topology.num_cells):
            cx, cy = geometry.center(cell_id)
            for neighbor in geometry.topology.neighbors(cell_id):
                nx, ny = geometry.center(neighbor)
                assert math.hypot(nx - cx, ny - cy) == pytest.approx(
                    expected
                )

    def test_unit_radius_gives_1km_cells(self):
        geometry = HexGeometry(
            HexTopology(3, 3), cell_radius_km=UNIT_CELL_RADIUS
        )
        assert geometry.neighbor_distance() == pytest.approx(1.0)

    def test_cell_of_center_is_itself(self):
        geometry = HexGeometry(HexTopology(4, 4))
        for cell_id in range(16):
            assert geometry.cell_of(*geometry.center(cell_id)) == cell_id


class TestSpawn:
    def test_spawn_point_inside_cell(self):
        model = make_model()
        rng = random.Random(0)
        for cell_id in range(model.topology.num_cells):
            mobile = model.spawn(cell_id, 0.0, rng)
            x, y = model.position_of(mobile, 0.0)
            assert model.geometry.cell_of(x, y) == cell_id

    def test_stationary_fraction(self):
        model = make_model(stationary_fraction=1.0)
        mobile = model.spawn(0, 0.0, random.Random(1))
        assert not mobile.is_moving
        assert model.next_transition(mobile, 0.0) is None

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            make_model(stationary_fraction=-0.1)


class TestCrossings:
    def aim(self, model, mobile, angle_degrees, speed_kmh=100.0):
        trajectory = model._trajectories[mobile.mobile_id]
        speed = speed_kmh / 3600.0
        angle = math.radians(angle_degrees)
        trajectory.vx = speed * math.cos(angle)
        trajectory.vy = speed * math.sin(angle)
        cx, cy = model.geometry.center(mobile.cell_id)
        trajectory.x0, trajectory.y0, trajectory.t0 = cx, cy, 0.0

    def test_due_east_crosses_east_neighbor(self):
        model = make_model()
        cell = model.topology.cell_id(2, 2)
        mobile = model.spawn(cell, 0.0, random.Random(0))
        self.aim(model, mobile, 0.0)
        transition = model.next_transition(mobile, 0.0)
        assert transition.next_cell == model.topology.cell_id(2, 3)
        expected = (model.geometry.neighbor_distance() / 2) / (100 / 3600)
        assert transition.time == pytest.approx(expected)

    def test_due_west_crosses_west_neighbor(self):
        model = make_model()
        cell = model.topology.cell_id(2, 2)
        mobile = model.spawn(cell, 0.0, random.Random(0))
        self.aim(model, mobile, 180.0)
        transition = model.next_transition(mobile, 0.0)
        assert transition.next_cell == model.topology.cell_id(2, 1)

    def test_crossing_lands_on_voronoi_boundary(self):
        model = make_model()
        rng = random.Random(3)
        for _ in range(30):
            cell = model.topology.cell_id(2, 2)
            mobile = model.spawn(cell, 0.0, rng)
            transition = model.next_transition(mobile, 0.0, rng)
            if transition.next_cell == EXIT_CELL:
                continue
            x, y = model.position_of(mobile, transition.time)
            cx, cy = model.geometry.center(cell)
            nx, ny = model.geometry.center(transition.next_cell)
            own = math.hypot(x - cx, y - cy)
            other = math.hypot(x - nx, y - ny)
            assert own == pytest.approx(other, abs=1e-9)

    def test_transition_targets_adjacent_cell(self):
        model = make_model()
        rng = random.Random(4)
        for cell_id in range(model.topology.num_cells):
            mobile = model.spawn(cell_id, 0.0, rng)
            transition = model.next_transition(mobile, 0.0, rng)
            assert transition is not None
            if transition.next_cell != EXIT_CELL:
                assert transition.next_cell in model.topology.neighbors(
                    cell_id
                )

    def test_border_cell_heading_out_exits(self):
        model = make_model()
        corner = model.topology.cell_id(0, 0)
        mobile = model.spawn(corner, 0.0, random.Random(5))
        self.aim(model, mobile, 225.0)  # south-west, away from the grid
        transition = model.next_transition(mobile, 0.0)
        assert transition.next_cell == EXIT_CELL
        assert transition.time > 0.0

    def test_chain_of_crossings_moves_east(self):
        """A due-east mobile hops column to column across the row."""
        model = make_model(rows=4, cols=6)
        cell = model.topology.cell_id(2, 0)
        mobile = model.spawn(cell, 0.0, random.Random(6))
        self.aim(model, mobile, 0.0)
        visited = [cell]
        now = 0.0
        while True:
            transition = model.next_transition(mobile, now)
            if transition.next_cell == EXIT_CELL:
                break
            mobile.cell_id = transition.next_cell
            visited.append(transition.next_cell)
            now = transition.time
        # Crosses the whole row in order.  (Past the last column the
        # odd-row offset makes a diagonal cell's center nearest for a
        # while before the mobile exits, so only the prefix is fixed.)
        assert visited[:6] == [
            model.topology.cell_id(2, col) for col in range(6)
        ]

    def test_forget_releases_trajectory(self):
        model = make_model()
        mobile = model.spawn(0, 0.0, random.Random(7))
        model.forget(mobile)
        assert model.next_transition(mobile, 0.0) is None


class TestSimulatorIntegration:
    def test_full_simulation_on_the_plane(self):
        from repro.simulation.scenarios import stationary
        from repro.simulation.simulator import CellularSimulator

        geometry = HexGeometry(HexTopology(4, 5, wrap=False))
        model = PlanarHexModel(
            geometry, UniformSpeedSampler(80.0, 120.0),
            stationary_fraction=0.2,
        )
        config = stationary("AC3", offered_load=120.0, duration=400.0,
                            seed=11)
        simulator = CellularSimulator(config, mobility_model=model)
        result = simulator.run()
        attempts = sum(c.handoff_attempts for c in result.cells)
        exits = sum(c.exited for c in result.cells)
        assert attempts > 0
        assert exits > 0  # open borders leak mobiles
        for cell in simulator.network.cells:
            assert 0.0 <= cell.used_bandwidth <= cell.capacity + 1e-9
        # Trajectories of finished mobiles were released.
        assert len(model._trajectories) == len(
            simulator.active_connections
        )

    def test_estimator_learns_straight_line_structure(self):
        """Entering from the west implies leaving to the east."""
        from repro.simulation.scenarios import stationary
        from repro.simulation.simulator import CellularSimulator

        geometry = HexGeometry(HexTopology(4, 6, wrap=False))
        model = PlanarHexModel(geometry, ConstantSpeedSampler(100.0))
        config = stationary("AC3", offered_load=100.0, duration=1000.0,
                            seed=12)
        simulator = CellularSimulator(config, mobility_model=model)
        simulator.run()
        topology = geometry.topology
        center = topology.cell_id(2, 2)
        west = topology.cell_id(2, 1)
        east = topology.cell_id(2, 3)
        estimator = simulator.network.station(center).estimator
        probabilities = estimator.handoff_probabilities(
            1000.0, prev=west, extant_sojourn=0.0, t_est=1000.0
        )
        if probabilities:
            # Mass toward the east dominates any backward mass.
            assert probabilities.get(east, 0.0) >= probabilities.get(
                west, 0.0
            )
