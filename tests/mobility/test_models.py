"""Unit tests for mobility models."""

import random

import pytest

from repro.cellular.base_station import EXIT_CELL
from repro.cellular.topology import HexTopology, LinearTopology
from repro.mobility.mobile import Mobile
from repro.mobility.models import (
    HexMobilityModel,
    LinearMobilityModel,
    PopulationClass,
    TravelDirections,
)
from repro.mobility.speed import ConstantSpeedSampler, UniformSpeedSampler


def make_model(ring=True, speed=36.0, directions=TravelDirections.TWO_WAY,
               num_cells=10):
    topology = LinearTopology(num_cells, ring=ring)
    return LinearMobilityModel(
        topology, ConstantSpeedSampler(speed), directions=directions
    )


class TestSpawn:
    def test_position_inside_cell(self):
        model = make_model()
        rng = random.Random(0)
        for cell_id in range(10):
            mobile = model.spawn(cell_id, 0.0, rng)
            low, high = model.topology.cell_span_km(cell_id)
            assert low <= mobile.position_km < high
            assert mobile.cell_id == cell_id

    def test_two_way_directions_balanced(self):
        model = make_model()
        rng = random.Random(1)
        directions = [model.spawn(0, 0.0, rng).direction for _ in range(2000)]
        forward = sum(1 for d in directions if d == 1)
        assert 900 < forward < 1100

    def test_one_way_always_forward(self):
        model = make_model(directions=TravelDirections.ONE_WAY)
        rng = random.Random(2)
        assert all(
            model.spawn(3, 0.0, rng).direction == 1 for _ in range(50)
        )

    def test_stationary_fraction(self):
        topology = LinearTopology(10)
        model = LinearMobilityModel(
            topology,
            ConstantSpeedSampler(36.0),
            stationary_fraction=1.0,
        )
        mobile = model.spawn(0, 0.0, random.Random(0))
        assert not mobile.is_moving
        assert model.next_transition(mobile, 0.0) is None

    def test_invalid_stationary_fraction(self):
        with pytest.raises(ValueError):
            LinearMobilityModel(
                LinearTopology(10),
                ConstantSpeedSampler(36.0),
                stationary_fraction=1.5,
            )


class TestCrossing:
    def test_crossing_time_from_distance(self):
        model = make_model(speed=36.0)  # 0.01 km/s
        mobile = Mobile(0.5, 36.0, 1, 0)
        transition = model.next_transition(mobile, now=100.0)
        assert transition.time == pytest.approx(100.0 + 50.0)
        assert transition.next_cell == 1

    def test_backward_crossing(self):
        model = make_model(speed=36.0)
        mobile = Mobile(2.25, 36.0, -1, 2)
        transition = model.next_transition(mobile, now=0.0)
        assert transition.time == pytest.approx(25.0)
        assert transition.next_cell == 1

    def test_ring_wrap_forward(self):
        model = make_model(speed=36.0)
        mobile = Mobile(9.5, 36.0, 1, 9)
        transition = model.next_transition(mobile, now=0.0)
        assert transition.next_cell == 0

    def test_ring_wrap_backward(self):
        model = make_model(speed=36.0)
        mobile = Mobile(0.5, 36.0, -1, 0)
        transition = model.next_transition(mobile, now=0.0)
        assert transition.next_cell == 9

    def test_open_road_exit(self):
        model = make_model(ring=False, speed=36.0)
        mobile = Mobile(9.5, 36.0, 1, 9)
        transition = model.next_transition(mobile, now=0.0)
        assert transition.next_cell == EXIT_CELL

    def test_boundary_pinned_mobile_traverses_full_cell(self):
        model = make_model(speed=36.0)
        # Placed exactly on cell 1's left edge moving right.
        mobile = Mobile(1.0, 36.0, 1, 1)
        transition = model.next_transition(mobile, now=0.0)
        assert transition.time == pytest.approx(100.0)
        assert transition.next_cell == 2

    def test_crossing_position_forward_and_backward(self):
        model = make_model()
        assert model.crossing_position(Mobile(2.3, 36.0, 1, 2)) == 3.0
        assert model.crossing_position(Mobile(2.3, 36.0, -1, 2)) == 2.0

    def test_crossing_position_wraps(self):
        model = make_model()
        assert model.crossing_position(Mobile(9.5, 36.0, 1, 9)) == 0.0

    def test_sequence_of_crossings_is_periodic(self):
        """After the first partial cell, crossings are one diameter apart."""
        model = make_model(speed=36.0)
        mobile = Mobile(0.25, 36.0, 1, 0)
        now = 0.0
        times = []
        for _ in range(4):
            transition = model.next_transition(mobile, now)
            times.append(transition.time)
            mobile.place(
                model.crossing_position(mobile), transition.next_cell,
                transition.time,
            )
            now = transition.time
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert times[0] == pytest.approx(75.0)
        assert all(gap == pytest.approx(100.0) for gap in gaps)


class TestHexModel:
    def make(self):
        topology = HexTopology(4, 4, wrap=True)
        population = (
            PopulationClass("vehicular", 0.5, 60.0),
            PopulationClass("stationary", 0.5, 0.0),
        )
        return HexMobilityModel(topology, population)

    def test_population_fractions_validated(self):
        with pytest.raises(ValueError):
            HexMobilityModel(
                HexTopology(3, 3),
                (PopulationClass("a", 0.5, 60.0),),
            )

    def test_spawn_assigns_class(self):
        model = self.make()
        rng = random.Random(0)
        mobiles = [model.spawn(0, 0.0, rng) for _ in range(200)]
        moving = sum(1 for mobile in mobiles if mobile.is_moving)
        assert 60 < moving < 140

    def test_transition_targets_are_neighbors(self):
        model = self.make()
        rng = random.Random(1)
        for _ in range(100):
            mobile = model.spawn(5, 0.0, rng)
            transition = model.next_transition(mobile, 0.0, rng)
            if transition is None:
                continue
            assert transition.next_cell in model.topology.neighbors(5)
            assert transition.time > 0.0

    def test_stationary_never_transitions(self):
        model = HexMobilityModel(
            HexTopology(4, 3, wrap=True),
            (PopulationClass("stationary", 1.0, 0.0),),
        )
        rng = random.Random(2)
        mobile = model.spawn(0, 0.0, rng)
        assert model.next_transition(mobile, 0.0, rng) is None

    def test_forget_releases_state(self):
        model = self.make()
        rng = random.Random(3)
        mobile = model.spawn(0, 0.0, rng)
        model.forget(mobile)
        assert model.next_transition(mobile, 0.0, rng) is None


class TestSpeedSamplers:
    def test_uniform_range(self):
        sampler = UniformSpeedSampler(80.0, 120.0)
        rng = random.Random(0)
        draws = [sampler.sample(0.0, rng) for _ in range(1000)]
        assert all(80.0 <= draw <= 120.0 for draw in draws)
        assert sampler.mean == 100.0

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            UniformSpeedSampler(100.0, 50.0)
        with pytest.raises(ValueError):
            UniformSpeedSampler(-10.0, 50.0)

    def test_constant_sampler(self):
        sampler = ConstantSpeedSampler(55.0)
        assert sampler.sample(0.0, random.Random(0)) == 55.0
