"""Unit tests for the profile-driven speed sampler and Mobile basics."""

import random

import pytest

from repro.mobility.mobile import Mobile
from repro.mobility.speed import ProfileSpeedSampler
from repro.traffic.profiles import DayProfile


def test_profile_sampler_centers_on_profile():
    profile = DayProfile([(0.0, 100.0), (9.0, 40.0), (12.0, 100.0)])
    sampler = ProfileSpeedSampler(profile, half_width=20.0)
    rng = random.Random(0)
    rush = [sampler.sample(9 * 3600.0, rng) for _ in range(500)]
    night = [sampler.sample(0.0, rng) for _ in range(500)]
    assert all(20.0 <= value <= 60.0 for value in rush)
    assert all(80.0 <= value <= 120.0 for value in night)


def test_profile_sampler_clamps_at_zero():
    profile = DayProfile([(0.0, 5.0)])
    sampler = ProfileSpeedSampler(profile, half_width=20.0)
    rng = random.Random(1)
    draws = [sampler.sample(0.0, rng) for _ in range(200)]
    assert all(draw >= 0.0 for draw in draws)


def test_negative_half_width_rejected():
    with pytest.raises(ValueError):
        ProfileSpeedSampler(DayProfile([(0.0, 10.0)]), half_width=-1.0)


class TestMobile:
    def test_speed_conversion(self):
        mobile = Mobile(0.0, 36.0, 1, 0)
        assert mobile.speed_km_per_s == pytest.approx(0.01)

    def test_negative_speed_rejected(self):
        with pytest.raises(ValueError):
            Mobile(0.0, -1.0, 1, 0)

    def test_is_moving(self):
        assert Mobile(0.0, 10.0, 1, 0).is_moving
        assert not Mobile(0.0, 0.0, 0, 0).is_moving

    def test_place_updates_state(self):
        mobile = Mobile(0.0, 36.0, 1, 0)
        mobile.place(3.0, 3, now=50.0)
        assert mobile.position_km == 3.0
        assert mobile.cell_id == 3
        assert mobile.position_time == 50.0

    def test_ids_unique(self):
        first = Mobile(0.0, 1.0, 1, 0)
        second = Mobile(0.0, 1.0, 1, 0)
        assert first.mobile_id != second.mobile_id
