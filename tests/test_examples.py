"""Smoke checks on the bundled examples.

Running each example end-to-end takes minutes (they use realistic
horizons), so here we check structure: every example compiles, exposes
a ``main()`` and guards it behind ``__main__`` — plus we execute the
two fastest ones for real.
"""

import ast
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 10


@pytest.mark.parametrize(
    "path", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_structure(path):
    tree = ast.parse(path.read_text())
    # A module docstring explaining the scenario.
    assert ast.get_docstring(tree), f"{path.name} lacks a docstring"
    functions = {
        node.name for node in tree.body if isinstance(node, ast.FunctionDef)
    }
    assert "main" in functions, f"{path.name} lacks a main()"
    # Guarded entry point.
    assert any(
        isinstance(node, ast.If)
        and isinstance(node.test, ast.Compare)
        and getattr(node.test.left, "id", "") == "__name__"
        for node in tree.body
    ), f"{path.name} lacks an if __name__ guard"


@pytest.mark.parametrize("name", ["estimator_inspection.py",
                                  "weekend_patterns.py"])
def test_fast_examples_run(name):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip()
