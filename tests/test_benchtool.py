"""Tests for the benchmark harness plumbing (history + compare gates)."""

import json

from repro.benchtool import (
    _spatial_oversubscribed,
    compare_reports,
    print_history,
)


def _report(date: str, **overrides) -> dict:
    report = {
        "date": date,
        "kernel": "numpy",
        "smoke": False,
        "micro": {
            "event_loop": {
                "events_per_sec": 500_000.0, "ops_per_sec": 500_000.0
            },
            "handoff_probability": {"ops_per_sec": 40_000.0},
        },
        "simulation": {
            "ac3_load200": {"events_per_sec": 90_000.0},
        },
        "serve_latency": {
            "static": {"decisions_per_s": 22_000.0, "p99_ms": 4.5},
            "ac3": {"decisions_per_s": 2_500.0, "p99_ms": 30.0},
        },
    }
    report.update(overrides)
    return report


def _write(tmp_path, date: str, payload) -> "Path":
    path = tmp_path / f"BENCH_{date}.json"
    path.write_text(
        payload if isinstance(payload, str) else json.dumps(payload)
    )
    return path


class TestPrintHistory:
    def run(self, paths):
        lines = []
        code = print_history(paths, out=lines.append)
        return code, "\n".join(lines)

    def test_no_reports_is_a_pointer_not_an_error(self):
        code, out = self.run([])
        assert code == 0
        assert "no BENCH_<date>.json reports found" in out
        assert "repro-bench" in out
        assert "|" not in out  # no empty table

    def test_only_unreadable_reports_fails(self, tmp_path):
        garbage = _write(tmp_path, "2026-08-01", "{not json")
        code, out = self.run([garbage])
        assert code == 2
        assert "skipping" in out
        assert "no readable benchmark reports" in out

    def test_single_report_renders_with_trend_note(self, tmp_path):
        path = _write(tmp_path, "2026-08-01", _report("2026-08-01"))
        code, out = self.run([path])
        assert code == 0
        assert "| 2026-08-01 | numpy |" in out
        assert "only one report" in out

    def test_serve_columns_present_and_dash_for_old_reports(self, tmp_path):
        old = _report("2026-08-01")
        old.pop("serve_latency")
        paths = [
            _write(tmp_path, "2026-08-01", old),
            _write(tmp_path, "2026-08-02", _report("2026-08-02")),
        ]
        code, out = self.run(paths)
        assert code == 0
        header = next(line for line in out.splitlines() if "date" in line)
        assert "serve dec/s" in header and "serve p99" in header
        rows = [line for line in out.splitlines() if line.startswith("| 2026")]
        assert len(rows) == 2
        # Pre-serve reports degrade to "-", new ones carry the numbers.
        assert "| - | - |" in rows[0]
        assert "22,000" in rows[1] and "4.5 ms" in rows[1]
        assert "only one report" not in out

    def test_rows_sort_oldest_first_and_flag_smoke(self, tmp_path):
        paths = [
            _write(tmp_path, "2026-08-02", _report("2026-08-02", smoke=True)),
            _write(tmp_path, "2026-08-01", _report("2026-08-01")),
        ]
        code, out = self.run(paths)
        assert code == 0
        rows = [line for line in out.splitlines() if line.startswith("| 2026")]
        assert rows[0].startswith("| 2026-08-01 |")
        assert rows[1].startswith("| 2026-08-02 (smoke) |")


class TestSpatialOversubscription:
    def test_single_shard_runs_in_process_and_is_never_oversubscribed(self):
        assert not _spatial_oversubscribed(1, 1)
        assert not _spatial_oversubscribed(1, 2)

    def test_multi_shard_counts_the_coordinating_parent(self):
        # shards workers + 1 parent must fit in the core count.
        assert _spatial_oversubscribed(2, 2)
        assert not _spatial_oversubscribed(2, 4)
        assert _spatial_oversubscribed(4, 4)
        assert not _spatial_oversubscribed(4, 8)
        assert _spatial_oversubscribed(8, 8)


class TestServeFloorGate:
    def test_full_run_below_floor_regresses(self):
        baseline = _report("2026-08-01")
        current = _report("2026-08-02")
        current["serve_latency"]["static"]["decisions_per_s"] = 5_000.0
        regressions = compare_reports(baseline, current, 0.15)
        assert "serve_decisions_floor" in regressions

    def test_smoke_runs_are_exempt(self):
        baseline = _report("2026-08-01")
        current = _report("2026-08-02", smoke=True)
        current["serve_latency"]["static"]["decisions_per_s"] = 5_000.0
        regressions = compare_reports(baseline, current, 0.15)
        assert "serve_decisions_floor" not in regressions

    def test_at_or_above_floor_passes(self):
        baseline = _report("2026-08-01")
        regressions = compare_reports(baseline, _report("2026-08-02"), 0.15)
        assert "serve_decisions_floor" not in regressions

    def test_oversubscribed_spatial_legs_are_not_gated(self):
        # On a 2-core host a 2-shard leg is 3 processes (workers plus
        # the coordinator); its wall time tracks scheduler contention,
        # so it must vanish from the relative gate, not regress.
        baseline = _report("2026-08-01")
        baseline["simulation"]["ac3_spatial"] = {
            "runs": [
                {"shards": 1, "events_per_sec": 20_000.0,
                 "oversubscribed": _spatial_oversubscribed(1, 2)},
                {"shards": 2, "events_per_sec": 30_000.0,
                 "oversubscribed": _spatial_oversubscribed(2, 2)},
            ],
        }
        current = _report("2026-08-02")
        current["simulation"]["ac3_spatial"] = {
            "runs": [
                {"shards": 1, "events_per_sec": 19_000.0,
                 "oversubscribed": _spatial_oversubscribed(1, 2)},
                {"shards": 2, "events_per_sec": 15_000.0,
                 "oversubscribed": _spatial_oversubscribed(2, 2)},
            ],
        }
        regressions = compare_reports(baseline, current, 0.15)
        assert regressions == []

    def test_serve_variants_skip_the_relative_gate(self):
        # A smoke-scale CI run measures serve startup amortisation, not
        # the service; only the absolute floor gates serve throughput.
        baseline = _report("2026-08-01")
        current = _report("2026-08-02")
        current["serve_latency"]["ac3"]["decisions_per_s"] = 100.0
        current["serve_latency"]["static"]["decisions_per_s"] = 11_000.0
        regressions = compare_reports(baseline, current, 0.15)
        assert regressions == []
