"""Spatial checkpoint manifest schema: v2 stamping, v1 tolerance,
plan-independent restore."""

import json

import pytest

from repro.cellular.topology import HexTopology
from repro.simulation.scenarios import hex_city
from repro.simulation.spatial import (
    load_spatial_checkpoint,
    partition_hex,
    run_spatial_campaign,
    write_spatial_checkpoint,
)


def _sample_state():
    return {
        0: {(None, 1): ([1.0, 2.0], [10.0, 20.0])},
        3: {(2, 4): ([5.0], [15.0])},
    }


def _write(tmp_path, kind="rows"):
    topology = HexTopology(4, 4, wrap=True)
    plan = partition_hex(topology, 2, kind=kind)
    manifest = write_spatial_checkpoint(
        tmp_path / "day-000", plan, _sample_state(), {"day": 0}
    )
    return tmp_path / "day-000", manifest


class TestManifestSchema:
    def test_writer_stamps_schema_2_and_plan_kind(self, tmp_path):
        day_dir, manifest = _write(tmp_path, kind="tiles")
        assert manifest["schema"] == 2
        assert manifest["plan_kind"] == "tiles"
        on_disk = json.loads((day_dir / "manifest.json").read_text())
        assert on_disk["schema"] == 2
        assert on_disk["plan_kind"] == "tiles"

    def test_round_trip_restores_exports_bit_identically(self, tmp_path):
        day_dir, _ = _write(tmp_path)
        assert load_spatial_checkpoint(day_dir) == _sample_state()

    def test_v1_manifest_without_schema_field_still_loads(self, tmp_path):
        day_dir, _ = _write(tmp_path)
        manifest_path = day_dir / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["schema"]
        del manifest["plan_kind"]
        manifest_path.write_text(json.dumps(manifest))
        assert load_spatial_checkpoint(day_dir) == _sample_state()

    def test_newer_schema_is_rejected_loudly(self, tmp_path):
        day_dir, _ = _write(tmp_path)
        manifest_path = day_dir / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["schema"] = 3
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="schema 3"):
            load_spatial_checkpoint(day_dir)


class TestPlanIndependentRestore:
    def test_campaign_days_identical_across_plan_kinds(self, tmp_path):
        """Day 1 warm-starts from day 0's written checkpoint; matching
        per-day results across plan kinds prove the cell-keyed exports
        restore identically no matter which plan wrote or reads them."""
        city = hex_city(
            "AC3",
            rows=8,
            cols=6,
            offered_load=150.0,
            duration=40.0,
            seed=7,
            hotspots=((2, 2, 3.0),),
        )
        reference = None
        for kind in ("rows", "load", "tiles"):
            reports = run_spatial_campaign(
                city,
                2,
                days=2,
                state_dir=tmp_path / kind,
                processes=False,
                plan_kind=kind,
            )
            summary = [
                (
                    report.day,
                    report.seed,
                    report.blocking_probability,
                    report.dropping_probability,
                    report.events,
                    report.quadruplets,
                )
                for report in reports
            ]
            if reference is None:
                reference = summary
            else:
                assert summary == reference, f"kind={kind} diverged"

    def test_checkpoint_written_under_one_plan_loads_under_another(
        self, tmp_path
    ):
        topology = HexTopology(4, 4, wrap=True)
        state = _sample_state()
        rows_dir = tmp_path / "rows"
        tiles_dir = tmp_path / "tiles"
        write_spatial_checkpoint(
            rows_dir, partition_hex(topology, 2, kind="rows"), state, {}
        )
        write_spatial_checkpoint(
            tiles_dir, partition_hex(topology, 4, kind="tiles"), state, {}
        )
        # Exports are keyed by cell, not shard: both layouts restore to
        # the same mapping even though the shard files differ.
        assert (
            load_spatial_checkpoint(rows_dir)
            == load_spatial_checkpoint(tiles_dir)
            == state
        )
