"""Determinism proofs for checkpoint save/restore.

The contract under test: restore → run produces the *same*
``metrics_key()`` as the equivalent uninterrupted run — bit-identical
counters, traces, and event totals, whether the checkpoint was written
at the end of a run, mid-run by the heartbeat, or loaded by a brand-new
process (the subprocess test).
"""

import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest

from repro.simulation.scenarios import stationary
from repro.simulation.simulator import CellularSimulator
from repro.simulation.tracing import ConnectionTracer
from repro.state import (
    Checkpointer,
    CheckpointError,
    StateFormatError,
    inspect_state,
    restore_simulator,
    save_checkpoint,
)

SRC = str(Path(__file__).resolve().parents[2] / "src")


def base_config(**overrides):
    defaults = dict(
        offered_load=150.0, voice_ratio=0.8, duration=300.0, seed=7
    )
    defaults.update(overrides)
    return stationary("AC3", **defaults)


def split_run_parity(config, split):
    """Uninterrupted vs save-at-``split``/restore; returns both keys."""
    full = CellularSimulator(config).run()
    first = CellularSimulator(replace(config, duration=split))
    first.run()
    return full, first


class TestSplitRunParity:
    def test_restore_continues_bit_identically(self, tmp_path):
        config = base_config()
        full, first = split_run_parity(config, split=150.0)
        path = save_checkpoint(first, tmp_path / "ckpt")
        resumed = restore_simulator(path, config).run()
        assert resumed.metrics_key() == full.metrics_key()

    def test_restore_with_finite_t_int(self, tmp_path):
        config = base_config(seed=11, t_int=120.0)
        full, first = split_run_parity(config, split=150.0)
        path = save_checkpoint(first, tmp_path / "ckpt")
        resumed = restore_simulator(path, config).run()
        assert resumed.metrics_key() == full.metrics_key()

    def test_double_restore(self, tmp_path):
        # save -> load -> save -> load still matches the straight run.
        config = base_config(seed=3)
        full, first = split_run_parity(config, split=100.0)
        first_path = save_checkpoint(first, tmp_path / "first")
        middle = restore_simulator(first_path, replace(config, duration=200.0))
        middle.run()
        middle_path = save_checkpoint(middle, tmp_path / "middle")
        resumed = restore_simulator(middle_path, config).run()
        assert resumed.metrics_key() == full.metrics_key()


class TestMidRunCheckpointer:
    def test_heartbeat_checkpoint_restores_to_same_metrics(self, tmp_path):
        config = base_config(offered_load=200.0, duration=400.0, seed=3)
        full = CellularSimulator(config).run()
        watched = CellularSimulator(config)
        checkpointer = Checkpointer(
            watched, tmp_path / "ckpts", every=100.0, keep=2
        )
        watched.checkpointer = checkpointer
        watched.run()
        assert checkpointer.latest is not None
        assert len(list((tmp_path / "ckpts").iterdir())) <= 2  # pruned
        resumed = restore_simulator(checkpointer.latest, config).run()
        assert resumed.metrics_key() == full.metrics_key()


class TestGuards:
    def test_extensions_are_not_checkpointable(self, tmp_path):
        config = base_config(duration=50.0)
        sim = CellularSimulator(config, extensions=[ConnectionTracer()])
        sim.run()
        with pytest.raises(CheckpointError):
            save_checkpoint(sim, tmp_path / "ckpt")

    def test_config_fingerprint_mismatch(self, tmp_path):
        config = base_config(duration=50.0)
        sim = CellularSimulator(config)
        sim.run()
        path = save_checkpoint(sim, tmp_path / "ckpt")
        other = replace(config, offered_load=160.0, duration=100.0)
        with pytest.raises(StateFormatError, match="offered_load"):
            restore_simulator(path, other)

    def test_duration_before_clock_rejected(self, tmp_path):
        config = base_config(duration=50.0)
        sim = CellularSimulator(config)
        sim.run()
        path = save_checkpoint(sim, tmp_path / "ckpt")
        with pytest.raises(StateFormatError):
            restore_simulator(path, replace(config, duration=25.0))

    def test_duration_and_label_are_exempt(self, tmp_path):
        config = base_config(duration=50.0)
        sim = CellularSimulator(config)
        sim.run()
        path = save_checkpoint(sim, tmp_path / "ckpt")
        longer = replace(config, duration=80.0, label="another name")
        assert restore_simulator(path, longer).run().duration == 80.0


class TestInspect:
    def test_inspect_ok_then_corrupt(self, tmp_path):
        config = base_config(duration=50.0)
        sim = CellularSimulator(config)
        sim.run()
        path = save_checkpoint(sim, tmp_path / "ckpt")
        lines = []
        assert inspect_state(path, out=lines.append) == 0
        assert any("Integrity: OK" in line for line in lines)
        blob = path / "cells" / "cell_0004.bin"
        data = bytearray(blob.read_bytes())
        data[len(data) // 2] ^= 0xFF
        blob.write_bytes(bytes(data))
        lines.clear()
        assert inspect_state(path, out=lines.append) == 1
        assert any("FAIL" in line for line in lines)


class TestNewProcessRestore:
    def test_cli_round_trip_across_processes(self, tmp_path):
        # The true restart story: save in this process, restore via the
        # CLI in a brand-new interpreter, and match the straight run.
        def cli(*arguments):
            return subprocess.run(
                [sys.executable, "-m", "repro", "run",
                 "--load", "150", "--rvo", "0.8", "--seed", "7",
                 *arguments],
                capture_output=True, text=True, check=True,
                env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
            ).stdout

        full = cli("--duration", "240")
        ckpt = tmp_path / "ckpt"
        half = cli("--duration", "120", "--save-state", str(ckpt))
        assert f"state saved: {ckpt}" in half
        resumed = cli("--duration", "240", "--load-state", str(ckpt))
        assert resumed == full
