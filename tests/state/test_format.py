"""Unit tests for the on-disk state container (blobs, manifest, CRC)."""

import json

import pytest

from repro.state.format import (
    MANIFEST_NAME,
    SCHEMA_VERSION,
    StateCorruptionError,
    StateFormatError,
    StateSchemaError,
    cell_blob_name,
    crc32_of,
    load_manifest,
    pack_cell_blob,
    publish_state_dir,
    read_entry,
    unpack_cell_blob,
    verify_state_dir,
)

PAIRS = {
    (None, 2): ([10.0, 20.0], [3.5, 4.5]),  # birth-cell prev
    (1, -1): ([-5.0], [2.0]),               # EXIT_CELL next, negative time
    (1, 2): ([], []),
}

SNAPSHOTS = [
    {
        "prev": None,
        "built_at": 120.0,
        "per_next": {2: ([1.0, 2.0], [0.5, 1.0]), -1: ([], [])},
        "union": ([1.0, 2.0, 3.0], [0.25, 0.5, 1.0]),
    }
]


class TestCellBlob:
    def test_round_trip_without_snapshots(self):
        pairs, snapshots = unpack_cell_blob(pack_cell_blob(PAIRS))
        assert pairs == PAIRS
        assert snapshots is None

    def test_round_trip_with_snapshots(self):
        pairs, snapshots = unpack_cell_blob(pack_cell_blob(PAIRS, SNAPSHOTS))
        assert pairs == PAIRS
        assert snapshots == SNAPSHOTS

    def test_empty_blob(self):
        pairs, snapshots = unpack_cell_blob(pack_cell_blob({}))
        assert pairs == {}
        assert snapshots is None

    def test_bad_magic(self):
        data = b"XXXX" + pack_cell_blob({})[4:]
        with pytest.raises(StateFormatError):
            unpack_cell_blob(data)

    def test_truncation_detected(self):
        data = pack_cell_blob(PAIRS)
        with pytest.raises(StateCorruptionError):
            unpack_cell_blob(data[:-3])

    def test_trailing_bytes_detected(self):
        with pytest.raises(StateCorruptionError):
            unpack_cell_blob(pack_cell_blob(PAIRS) + b"\x00")

    def test_mismatched_columns_rejected(self):
        with pytest.raises(StateFormatError):
            pack_cell_blob({(1, 2): ([1.0, 2.0], [1.0])})

    def test_blob_name(self):
        assert cell_blob_name(7) == "cells/cell_0007.bin"


def make_state(tmp_path, schema_version=SCHEMA_VERSION):
    blob = pack_cell_blob(PAIRS)
    runtime = b'{"clock": 1.5}'
    manifest = {
        "format": "repro-state",
        "schema_version": schema_version,
        "clock": 1.5,
        "files": [
            {
                "path": "runtime.json",
                "bytes": len(runtime),
                "crc32": crc32_of(runtime),
            },
            {
                "path": cell_blob_name(0),
                "bytes": len(blob),
                "crc32": crc32_of(blob),
            },
        ],
    }
    path = tmp_path / "ckpt"
    publish_state_dir(
        path,
        {
            MANIFEST_NAME: json.dumps(manifest).encode(),
            "runtime.json": runtime,
            cell_blob_name(0): blob,
        },
    )
    return path


class TestContainer:
    def test_publish_and_verify(self, tmp_path):
        path = make_state(tmp_path)
        manifest = load_manifest(path)
        assert manifest["schema_version"] == SCHEMA_VERSION
        rows = verify_state_dir(path)
        assert [row["ok"] for row in rows] == [True, True]
        assert read_entry(path, manifest["files"][0]) == b'{"clock": 1.5}'

    def test_publish_replaces_existing(self, tmp_path):
        path = make_state(tmp_path)
        publish_state_dir(
            path,
            {
                MANIFEST_NAME: json.dumps(
                    {"format": "repro-state",
                     "schema_version": SCHEMA_VERSION,
                     "files": []}
                ).encode()
            },
        )
        assert load_manifest(path)["files"] == []
        assert not (path / "runtime.json").exists()

    def test_crc_flip_detected(self, tmp_path):
        path = make_state(tmp_path)
        blob_path = path / cell_blob_name(0)
        data = bytearray(blob_path.read_bytes())
        data[len(data) // 2] ^= 0x01
        blob_path.write_bytes(bytes(data))
        rows = verify_state_dir(path)
        assert [row["ok"] for row in rows] == [True, False]
        manifest = load_manifest(path)
        with pytest.raises(StateCorruptionError):
            read_entry(path, manifest["files"][1])

    def test_size_change_detected(self, tmp_path):
        path = make_state(tmp_path)
        blob_path = path / cell_blob_name(0)
        blob_path.write_bytes(blob_path.read_bytes() + b"\x00")
        manifest = load_manifest(path)
        with pytest.raises(StateCorruptionError):
            read_entry(path, manifest["files"][1])

    def test_schema_gate(self, tmp_path):
        path = make_state(tmp_path, schema_version=99)
        with pytest.raises(StateSchemaError, match="v99"):
            load_manifest(path)

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(StateFormatError):
            load_manifest(tmp_path / "nope")

    def test_foreign_manifest_rejected(self, tmp_path):
        target = tmp_path / "other"
        target.mkdir()
        (target / MANIFEST_NAME).write_text('{"format": "something-else"}')
        with pytest.raises(StateFormatError):
            load_manifest(target)
