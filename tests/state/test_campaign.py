"""Multi-day campaign runner: chaining, resume, and warm hydration."""

import json
from dataclasses import replace

import pytest

from repro.cellular.network import CellularNetwork
from repro.cellular.topology import LinearTopology
from repro.simulation.scenarios import stationary
from repro.simulation.simulator import CellularSimulator
from repro.state import CheckpointWarmStart, run_campaign, save_checkpoint
from repro.state.campaign import day_seed


def campaign_config(**overrides):
    defaults = dict(
        offered_load=100.0, voice_ratio=0.8, duration=100.0, seed=5
    )
    defaults.update(overrides)
    config = stationary("AC3", **defaults)
    return replace(config, day_seconds=100.0)  # compressed days


class TestCampaign:
    def test_three_days_chain_history(self, tmp_path):
        config = campaign_config()
        reports = run_campaign(config, days=3, state_dir=tmp_path / "camp")
        assert [report.day for report in reports] == [0, 1, 2]
        # Warm-started days accumulate quadruplet history.
        assert reports[1].quadruplets > reports[0].quadruplets
        assert reports[2].quadruplets > reports[1].quadruplets
        # Each day draws from its own derived seed.
        assert reports[0].seed == day_seed(config.seed, 0)
        assert len({report.seed for report in reports}) == 3

    def test_campaign_is_deterministic(self, tmp_path):
        config = campaign_config()
        first = run_campaign(config, days=2, state_dir=tmp_path / "a")
        second = run_campaign(config, days=2, state_dir=tmp_path / "b")
        for left, right in zip(first, second):
            assert left.p_cb == right.p_cb
            assert left.p_hd == right.p_hd
            assert left.mean_t_est == right.mean_t_est
            assert left.quadruplets == right.quadruplets
            assert left.events_processed == right.events_processed

    def test_resume_reuses_completed_days(self, tmp_path):
        config = campaign_config()
        state_dir = tmp_path / "camp"
        first = run_campaign(config, days=2, state_dir=state_dir)
        # Same args again: both days come from disk, nothing re-runs.
        again = run_campaign(config, days=2, state_dir=state_dir)
        assert again == first
        # Extending re-uses the prefix and appends day 3.
        extended = run_campaign(config, days=3, state_dir=state_dir)
        assert extended[:2] == first
        assert extended[2].day == 2

    def test_jsonl_report(self, tmp_path):
        config = campaign_config()
        state_dir = tmp_path / "camp"
        reports = run_campaign(config, days=2, state_dir=state_dir)
        lines = (state_dir / "campaign.jsonl").read_text().splitlines()
        assert len(lines) == 2
        for index, line in enumerate(lines):
            row = json.loads(line)
            assert row["day"] == index
            assert row["p_cb"] == reports[index].p_cb
            assert {"p_hd", "mean_t_est", "quadruplets"} <= set(row)

    def test_corrupt_day_truncates_resume(self, tmp_path):
        config = campaign_config()
        state_dir = tmp_path / "camp"
        run_campaign(config, days=2, state_dir=state_dir)
        # Destroy day 1's manifest: resume must redo it (and only it).
        (state_dir / "day_001" / "manifest.json").unlink()
        redone = run_campaign(config, days=2, state_dir=state_dir)
        assert [report.day for report in redone] == [0, 1]

    def test_requires_at_least_one_day(self, tmp_path):
        with pytest.raises(ValueError):
            run_campaign(campaign_config(), days=0, state_dir=tmp_path)


class TestWarmStart:
    def test_hydrate_rebases_and_expires(self, tmp_path):
        config = campaign_config()
        sim = CellularSimulator(config)
        sim.run()
        path = save_checkpoint(sim, tmp_path / "day0")
        warm = CheckpointWarmStart(path, rebase_seconds=config.day_seconds)
        network = CellularNetwork(
            LinearTopology(config.num_cells), capacity=config.capacity
        )
        warm.hydrate(network)
        times = [
            time
            for station in network.stations
            for (times, _s) in station.estimator.cache.export_columns().values()
            for time in times
        ]
        assert times, "hydration loaded no history"
        # Rebased history sits strictly before the new day's t = 0...
        assert max(times) <= 0.0
        # ...and nothing beyond the N_win horizon survives.
        station = network.stations[0]
        cache_config = station.estimator.cache.config
        horizon = (
            cache_config.window_days * cache_config.period
            + (cache_config.interval or 0.0)
        )
        assert min(times) >= -(horizon + config.day_seconds)

    def test_warm_state_flows_through_config(self, tmp_path):
        config = campaign_config()
        sim = CellularSimulator(config)
        sim.run()
        path = save_checkpoint(sim, tmp_path / "day0")
        warmed = CellularSimulator(
            replace(
                config,
                warm_state=CheckpointWarmStart(
                    path, rebase_seconds=config.day_seconds
                ),
            )
        )
        loaded = sum(
            station.estimator.cache.size()
            for station in warmed.network.stations
        )
        assert loaded > 0
