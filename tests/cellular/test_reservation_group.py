"""Columnar reservation groups: the Cell's incremental Eq. 5 buckets."""

import random

from repro.cellular.cell import Cell, ReservationGroup
from repro.traffic.classes import VOICE
from repro.traffic.connection import Connection


def _columns_sorted(group: ReservationGroup) -> bool:
    return group.entries == sorted(group.entries)


def test_add_keeps_columns_parallel_and_sorted():
    group = ReservationGroup()
    rng = random.Random(4)
    expected = {}
    for key in range(50):
        entry = rng.uniform(0.0, 100.0)
        basis = float(key)
        group.add(key, entry, basis)
        expected[key] = (entry, basis)
    assert len(group) == 50
    assert _columns_sorted(group)
    rebuilt = {
        key: (entry, basis)
        for key, entry, basis in zip(group.keys, group.entries, group.bases)
    }
    assert rebuilt == expected


def test_append_fast_path_for_monotone_entries():
    group = ReservationGroup()
    for key in range(10):
        group.add(key, float(key), 1.0)
    assert group.keys == list(range(10))
    assert group.entries == [float(key) for key in range(10)]


def test_remove_by_exact_entry_time():
    group = ReservationGroup()
    group.add(1, 5.0, 1.0)
    group.add(2, 5.0, 2.0)  # duplicate entry time
    group.add(3, 9.0, 3.0)
    assert group.remove(2, 5.0)
    assert group.keys == [1, 3]
    assert group.bases == [1.0, 3.0]
    assert not group.remove(2, 5.0)  # already gone
    assert not group.remove(3, 5.0)  # wrong entry time


def test_discard_fallback_scans_by_key():
    group = ReservationGroup()
    group.add(1, 5.0, 1.0)
    group.add(2, 7.0, 2.0)
    assert group.discard(2)
    assert not group.discard(2)
    assert group.keys == [1]


def test_cell_buckets_track_attach_and_detach():
    cell = Cell(0, capacity=1_000.0)
    rng = random.Random(11)
    connections = []
    for _ in range(40):
        connection = Connection(
            VOICE,
            0.0,
            0,
            prev_cell=rng.choice((None, 1, 2)),
            cell_entry_time=rng.uniform(0.0, 50.0),
        )
        cell.attach(connection)
        connections.append(connection)
    groups = cell.reservation_groups()
    assert sum(len(group) for group in groups.values()) == 40
    for group in groups.values():
        assert _columns_sorted(group)
    rng.shuffle(connections)
    for connection in connections:
        cell.detach(connection)
    assert cell.reservation_groups() == {}


def test_cell_bucket_survives_mutated_prev_cell():
    cell = Cell(0, capacity=100.0)
    connection = Connection(VOICE, 0.0, 0, prev_cell=1, cell_entry_time=3.0)
    cell.attach(connection)
    connection.prev_cell = 2  # hand-rolled double mutating while attached
    cell.detach(connection)
    assert cell.reservation_groups() == {}
