"""Unit tests for per-cell bandwidth accounting."""

import pytest

from repro.cellular.cell import CapacityError, Cell
from repro.traffic.classes import VIDEO, VOICE
from repro.traffic.connection import Connection


def connection(traffic_class=VOICE, cell_id=0):
    return Connection(traffic_class, start_time=0.0, cell_id=cell_id)


def test_initial_state():
    cell = Cell(3, 100.0)
    assert cell.cell_id == 3
    assert cell.capacity == 100.0
    assert cell.used_bandwidth == 0.0
    assert cell.free_bandwidth == 100.0
    assert cell.connection_count == 0


def test_nonpositive_capacity_rejected():
    with pytest.raises(ValueError):
        Cell(0, 0.0)
    with pytest.raises(ValueError):
        Cell(0, -5.0)


def test_attach_accounts_bandwidth():
    cell = Cell(0, 100.0)
    cell.attach(connection(VIDEO))
    assert cell.used_bandwidth == 4.0
    assert cell.connection_count == 1


def test_detach_releases_bandwidth():
    cell = Cell(0, 100.0)
    first = connection(VIDEO)
    cell.attach(first)
    cell.detach(first)
    assert cell.used_bandwidth == 0.0
    assert cell.connection_count == 0


def test_double_attach_rejected():
    cell = Cell(0, 100.0)
    first = connection()
    cell.attach(first)
    with pytest.raises(CapacityError):
        cell.attach(first)


def test_detach_unknown_rejected():
    cell = Cell(0, 100.0)
    with pytest.raises(CapacityError):
        cell.detach(connection())


def test_attach_beyond_capacity_rejected():
    cell = Cell(0, 4.0)
    cell.attach(connection(VIDEO))
    with pytest.raises(CapacityError):
        cell.attach(connection(VOICE))


def test_fits_new_connection_respects_reservation():
    cell = Cell(0, 100.0)
    cell.reserved_target = 10.0
    for _ in range(90):
        cell.attach(connection())
    assert not cell.fits_new_connection(1.0)
    cell.reserved_target = 0.0
    assert cell.fits_new_connection(1.0)


def test_fits_new_connection_boundary_exact():
    cell = Cell(0, 100.0)
    cell.reserved_target = 10.0
    for _ in range(89):
        cell.attach(connection())
    assert cell.fits_new_connection(1.0)  # 89 + 1 == 90 == C - B_r
    assert not cell.fits_new_connection(2.0)


def test_fits_handoff_ignores_reservation():
    cell = Cell(0, 100.0)
    cell.reserved_target = 50.0
    for _ in range(24):
        cell.attach(connection(VIDEO))  # 96 BUs
    assert cell.fits_handoff(4.0)
    assert not cell.fits_handoff(5.0)


def test_can_reserve_target():
    cell = Cell(0, 100.0)
    cell.reserved_target = 30.0
    for _ in range(70):
        cell.attach(connection())
    assert cell.can_reserve_target()
    cell.attach(connection())
    assert not cell.can_reserve_target()


def test_connections_iterates_attached():
    cell = Cell(0, 100.0)
    attached = [connection() for _ in range(3)]
    for item in attached:
        cell.attach(item)
    assert sorted(c.connection_id for c in cell.connections()) == sorted(
        c.connection_id for c in attached
    )


def test_fractional_bandwidth_accounting_is_stable():
    cell = Cell(0, 10.0)

    class Fractional:
        def __init__(self, connection_id):
            self.connection_id = connection_id
            self.bandwidth = 0.1

    items = [Fractional(index) for index in range(100)]
    for item in items:
        cell.attach(item)
    for item in items:
        cell.detach(item)
    assert cell.used_bandwidth == 0.0
