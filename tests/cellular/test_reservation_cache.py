"""The base station's incremental Eq. 5 memo: hits, invalidation, equality.

The contract under test: caching is a pure optimisation.  Whatever the
history of attaches, detaches, window changes and new quadruplets, a
cached station returns bit-identical reservations to an uncached one —
the cache may only skip work when nothing that feeds Eq. 5 has changed.
"""

import random

import pytest

from repro.cellular.network import CellularNetwork
from repro.cellular.topology import LinearTopology
from repro.estimation.cache import CacheConfig
from repro.traffic.classes import VOICE
from repro.traffic.connection import Connection


def build_network(reservation_cache=True, seed=1, interval=None):
    network = CellularNetwork(
        LinearTopology(10),
        cache_config=CacheConfig(interval=interval),
        reservation_cache=reservation_cache,
    )
    rng = random.Random(seed)
    for neighbor in (1, 9):
        station = network.station(neighbor)
        for index in range(60):
            station.estimator.record_departure(
                float(index), None, 0, rng.uniform(10.0, 60.0)
            )
        for _ in range(40):
            network.cell(neighbor).attach(
                Connection(
                    VOICE, 0.0, neighbor,
                    cell_entry_time=rng.uniform(0.0, 90.0),
                )
            )
    network.station(0).window.t_est = 10.0
    return network


class TestMemoBehaviour:
    def test_repeated_update_hits_the_cache(self):
        network = build_network()
        target = network.station(0)
        neighbor = network.station(1)
        first = target.update_target_reservation(100.0)
        misses = neighbor.contribution_cache_misses
        assert neighbor.contribution_cache_hits == 0
        second = target.update_target_reservation(100.0)
        assert second == first
        assert neighbor.contribution_cache_hits > 0
        assert neighbor.contribution_cache_misses == misses

    def test_attach_forces_recompute(self):
        network = build_network()
        target = network.station(0)
        neighbor = network.station(1)
        target.update_target_reservation(100.0)
        network.cell(1).attach(
            Connection(VOICE, 0.0, 1, cell_entry_time=50.0)
        )
        misses = neighbor.contribution_cache_misses
        target.update_target_reservation(100.0)
        assert neighbor.contribution_cache_misses == misses + 1

    def test_detach_forces_recompute(self):
        network = build_network()
        target = network.station(0)
        neighbor = network.station(1)
        victim = next(iter(network.cell(1).connections()))
        target.update_target_reservation(100.0)
        network.cell(1).detach(victim)
        misses = neighbor.contribution_cache_misses
        target.update_target_reservation(100.0)
        assert neighbor.contribution_cache_misses == misses + 1

    def test_t_est_change_forces_recompute(self):
        network = build_network()
        target = network.station(0)
        neighbor = network.station(1)
        target.update_target_reservation(100.0)
        target.window.t_est = 20.0
        misses = neighbor.contribution_cache_misses
        target.update_target_reservation(100.0)
        assert neighbor.contribution_cache_misses == misses + 1

    def test_new_quadruplet_forces_recompute(self):
        # A fresh observation rebuilds the F_HOE snapshot, so the memo
        # must not serve the pre-rebuild value.
        network = build_network()
        target = network.station(0)
        neighbor = network.station(1)
        target.update_target_reservation(100.0)
        neighbor.estimator.record_departure(99.0, None, 0, 30.0)
        misses = neighbor.contribution_cache_misses
        target.update_target_reservation(100.0)
        assert neighbor.contribution_cache_misses == misses + 1

    def test_clock_advance_forces_recompute(self):
        # Eq. 4 conditions on the extant sojourn, which grows with the
        # clock: same connections at a later instant is a *different*
        # Eq. 5 input and must be recomputed.
        network = build_network()
        target = network.station(0)
        neighbor = network.station(1)
        target.update_target_reservation(100.0)
        misses = neighbor.contribution_cache_misses
        target.update_target_reservation(101.0)
        assert neighbor.contribution_cache_misses == misses + 1

    def test_disabled_cache_never_counts(self):
        network = build_network(reservation_cache=False)
        target = network.station(0)
        neighbor = network.station(1)
        target.update_target_reservation(100.0)
        target.update_target_reservation(100.0)
        assert neighbor.contribution_cache_hits == 0
        assert neighbor.contribution_cache_misses == 0

    def test_messages_counted_identically_on_hits(self):
        cached = build_network(reservation_cache=True)
        naive = build_network(reservation_cache=False)
        for network in (cached, naive):
            network.station(0).update_target_reservation(100.0)
            network.station(0).update_target_reservation(100.0)
        assert cached.total_messages() == naive.total_messages()
        assert (
            cached.total_reservation_calculations()
            == naive.total_reservation_calculations()
        )


@pytest.mark.parametrize("interval", [None, 500.0])
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_randomized_history_matches_uncached(seed, interval):
    """Bit-identical reservations across a random mutation history."""
    cached = build_network(True, seed=seed, interval=interval)
    naive = build_network(False, seed=seed, interval=interval)
    rng = random.Random(100 + seed)
    now = 100.0
    for step in range(60):
        action = rng.random()
        if action < 0.3:
            # Attach an identical connection to both networks.
            entry = now - rng.uniform(0.0, 60.0)
            prev = rng.choice([None, 0, 2])
            for network in (cached, naive):
                network.cell(1).attach(
                    Connection(
                        VOICE, entry, 1,
                        prev_cell=prev, cell_entry_time=entry,
                    )
                )
        elif action < 0.5:
            live = list(cached.cell(1).connections())
            if live:
                victim_index = rng.randrange(len(live))
                cached.cell(1).detach(live[victim_index])
                naive.cell(1).detach(
                    list(naive.cell(1).connections())[victim_index]
                )
        elif action < 0.65:
            sojourn = rng.uniform(5.0, 80.0)
            prev = rng.choice([None, 0, 2])
            for network in (cached, naive):
                network.station(1).estimator.record_departure(
                    now, prev, 0, sojourn
                )
        elif action < 0.8:
            t_est = rng.uniform(1.0, 30.0)
            cached.station(0).window.t_est = t_est
            naive.station(0).window.t_est = t_est
        else:
            now += rng.uniform(0.0, 20.0)
        assert (
            cached.station(0).update_target_reservation(now)
            == naive.station(0).update_target_reservation(now)
        )
    # The untouched neighbour (cell 9) must have served real cache hits
    # during the same-instant updates, so equality above exercised both
    # the hit and the recompute paths.
    assert any(
        station.contribution_cache_hits > 0
        for station in cached.stations
    )
