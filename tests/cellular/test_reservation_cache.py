"""The base station's batched Eq. 5 paths: equality with the naive scan.

The contract under test: the columnar batched evaluation, the coalesced
estimation tick, and the cross-cell grouped flush are pure
optimisations.  Whatever the history of attaches, detaches, window
changes and new quadruplets, a batched station returns bit-identical
reservations to a naive one — and the message / N_calc accounting is
identical too.  (The per-``(version, now, target, t_est)`` contribution
memo that used to live here was retired: under the coalesced tick every
admission evaluates at a distinct ``now``, so its hit rate was
structurally zero — see DESIGN.md §4.)
"""

import random

import pytest

from repro._kernel import flush_batch_or_none, numpy_or_none
from repro.cellular.network import CellularNetwork
from repro.cellular.topology import LinearTopology
from repro.estimation.cache import CacheConfig
from repro.traffic.classes import VOICE
from repro.traffic.connection import Connection


def build_network(
    reservation_cache=True, seed=1, interval=None, grouped_flush=True
):
    network = CellularNetwork(
        LinearTopology(10),
        cache_config=CacheConfig(interval=interval),
        reservation_cache=reservation_cache,
        grouped_flush=grouped_flush,
    )
    rng = random.Random(seed)
    for neighbor in (1, 9):
        station = network.station(neighbor)
        for index in range(60):
            station.estimator.record_departure(
                float(index), None, 0, rng.uniform(10.0, 60.0)
            )
        for _ in range(40):
            network.cell(neighbor).attach(
                Connection(
                    VOICE, 0.0, neighbor,
                    cell_entry_time=rng.uniform(0.0, 90.0),
                )
            )
    network.station(0).window.t_est = 10.0
    return network


class TestBatchedEquivalence:
    def test_batched_matches_naive(self):
        batched = build_network(reservation_cache=True)
        naive = build_network(reservation_cache=False)
        assert (
            batched.station(0).update_target_reservation(100.0)
            == naive.station(0).update_target_reservation(100.0)
        )

    def test_messages_and_calculations_counted_identically(self):
        batched = build_network(reservation_cache=True)
        naive = build_network(reservation_cache=False)
        for network in (batched, naive):
            network.station(0).update_target_reservation(100.0)
            network.station(0).update_target_reservation(100.0)
        assert batched.total_messages() == naive.total_messages()
        assert (
            batched.total_reservation_calculations()
            == naive.total_reservation_calculations()
        )

    def test_message_total_matches_station_sweep(self):
        # total_messages() is maintained O(1) via count_messages();
        # it must always equal the sum of per-station counters.
        network = build_network()
        network.station(0).update_target_reservation(100.0)
        network.station(5).update_target_reservation(101.0)
        assert network.total_messages() == sum(
            station.messages_sent for station in network.stations
        )
        before = network.total_messages()
        network.recount_messages()
        assert network.total_messages() == before


class TestGroupedFlush:
    def test_grouped_tick_matches_sequential_updates(self):
        grouped = build_network(grouped_flush=True)
        sequential = build_network(grouped_flush=False)
        for cell_id in (0, 2, 8):
            grouped.mark_reservation_dirty(cell_id)
        grouped.flush_reservation_tick(100.0)
        for cell_id in (0, 2, 8):
            sequential.station(cell_id).update_target_reservation(100.0)
        for cell_id in (0, 2, 8):
            assert (
                grouped.cell(cell_id).reserved_target
                == sequential.cell(cell_id).reserved_target
            )
        assert grouped.total_messages() == sequential.total_messages()

    def test_grouped_path_actually_used_under_array_kernel(self):
        if flush_batch_or_none() is None:
            pytest.skip("pure-python kernel: no grouped flush")
        network = build_network(grouped_flush=True)
        network.mark_reservation_dirty(0)
        network.flush_reservation_tick(100.0)
        assert network.tick_grouped_suppliers > 0

    def test_flush_plan_perm_restores_connection_order(self):
        np = numpy_or_none()
        if np is None:
            pytest.skip("pure-python kernel: no flush plan")
        network = build_network()
        station = network.station(1)
        plan = station.grouped_flush_plan(np)
        assert plan is not None
        entries_cat, bases_cat, blocks, perm, n_rows = plan
        cell = network.cell(1)
        assert n_rows == cell.connection_count
        # Walking the rows through ``perm`` must visit the connections
        # in exactly the order ``cell.connections()`` yields them.
        row_entry = [float(entries_cat[index]) for index in perm]
        expected = [
            connection.cell_entry_time
            for connection in cell.connections()
        ]
        assert row_entry == expected

    def test_flush_plan_invalidated_by_attach(self):
        np = numpy_or_none()
        if np is None:
            pytest.skip("pure-python kernel: no flush plan")
        network = build_network()
        station = network.station(1)
        first = station.grouped_flush_plan(np)
        assert station.grouped_flush_plan(np) is first
        network.cell(1).attach(
            Connection(VOICE, 0.0, 1, cell_entry_time=50.0)
        )
        second = station.grouped_flush_plan(np)
        assert second is not first
        assert second[4] == network.cell(1).connection_count


@pytest.mark.parametrize("interval", [None, 500.0])
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_randomized_history_matches_naive(seed, interval):
    """Bit-identical reservations across a random mutation history."""
    batched = build_network(True, seed=seed, interval=interval)
    naive = build_network(False, seed=seed, interval=interval)
    rng = random.Random(100 + seed)
    now = 100.0
    for step in range(60):
        action = rng.random()
        if action < 0.3:
            # Attach an identical connection to both networks.
            entry = now - rng.uniform(0.0, 60.0)
            prev = rng.choice([None, 0, 2])
            for network in (batched, naive):
                network.cell(1).attach(
                    Connection(
                        VOICE, entry, 1,
                        prev_cell=prev, cell_entry_time=entry,
                    )
                )
        elif action < 0.5:
            live = list(batched.cell(1).connections())
            if live:
                victim_index = rng.randrange(len(live))
                batched.cell(1).detach(live[victim_index])
                naive.cell(1).detach(
                    list(naive.cell(1).connections())[victim_index]
                )
        elif action < 0.65:
            sojourn = rng.uniform(5.0, 80.0)
            prev = rng.choice([None, 0, 2])
            for network in (batched, naive):
                network.station(1).estimator.record_departure(
                    now, prev, 0, sojourn
                )
        elif action < 0.8:
            t_est = rng.uniform(1.0, 30.0)
            batched.station(0).window.t_est = t_est
            naive.station(0).window.t_est = t_est
        else:
            now += rng.uniform(0.0, 20.0)
        assert (
            batched.station(0).update_target_reservation(now)
            == naive.station(0).update_target_reservation(now)
        )


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_randomized_history_grouped_tick_matches_sequential(seed):
    """Grouped tick flushes equal per-station updates under churn."""
    grouped = build_network(True, seed=seed, grouped_flush=True)
    sequential = build_network(True, seed=seed, grouped_flush=False)
    rng = random.Random(200 + seed)
    now = 100.0
    for step in range(40):
        action = rng.random()
        if action < 0.4:
            entry = now - rng.uniform(0.0, 60.0)
            prev = rng.choice([None, 0, 2])
            for network in (grouped, sequential):
                network.cell(1).attach(
                    Connection(
                        VOICE, entry, 1,
                        prev_cell=prev, cell_entry_time=entry,
                    )
                )
        elif action < 0.6:
            live = list(grouped.cell(1).connections())
            if live:
                victim_index = rng.randrange(len(live))
                grouped.cell(1).detach(live[victim_index])
                sequential.cell(1).detach(
                    list(sequential.cell(1).connections())[victim_index]
                )
        else:
            now += rng.uniform(0.0, 20.0)
        targets = rng.sample(range(10), rng.randrange(1, 4))
        for cell_id in targets:
            grouped.mark_reservation_dirty(cell_id)
        grouped.flush_reservation_tick(now)
        for cell_id in targets:
            sequential.station(cell_id).update_target_reservation(now)
        for cell_id in targets:
            assert (
                grouped.cell(cell_id).reserved_target
                == sequential.cell(cell_id).reserved_target
            )
    assert grouped.total_messages() == sequential.total_messages()
