"""Partitioning invariants of HexTopology.row_bands / partition_hex."""

import pytest

from repro.cellular.topology import HexTopology
from repro.simulation.spatial import partition_hex


class TestRowBands:
    def test_sizes_differ_by_at_most_one(self):
        topology = HexTopology(10, 4, wrap=True)
        for bands in range(1, 11):
            ranges = topology.row_bands(bands)
            sizes = [end - start for start, end in ranges]
            assert len(ranges) == bands
            assert max(sizes) - min(sizes) <= 1
            assert sum(sizes) == topology.rows

    def test_contiguous_and_ordered(self):
        topology = HexTopology(8, 3, wrap=True)
        ranges = topology.row_bands(3)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == topology.rows
        for (_, end), (start, _) in zip(ranges, ranges[1:]):
            assert end == start

    def test_extra_rows_go_to_first_bands(self):
        ranges = HexTopology(10, 2, wrap=True).row_bands(4)
        assert [end - start for start, end in ranges] == [3, 3, 2, 2]

    def test_rejects_bad_band_counts(self):
        topology = HexTopology(4, 4, wrap=True)
        with pytest.raises(ValueError):
            topology.row_bands(0)
        with pytest.raises(ValueError):
            topology.row_bands(5)


class TestPartitionHex:
    @pytest.mark.parametrize("shards", [1, 2, 3, 4])
    def test_every_cell_owned_exactly_once(self, shards):
        topology = HexTopology(8, 5, wrap=True)
        plan = partition_hex(topology, shards)
        seen = []
        for shard in range(plan.shards):
            seen.extend(plan.cells[shard])
        assert sorted(seen) == list(range(topology.num_cells))
        for cell in range(topology.num_cells):
            owner = plan.owner[cell]
            assert cell in plan.cells[owner]

    def test_bands_are_contiguous_rows(self):
        topology = HexTopology(8, 5, wrap=True)
        plan = partition_hex(topology, 3)
        for shard in range(plan.shards):
            rows = sorted({topology.coordinates(c)[0] for c in plan.cells[shard]})
            assert rows == list(range(rows[0], rows[-1] + 1))

    @pytest.mark.parametrize("wrap", [False, True])
    def test_neighbor_sets_preserved_across_cuts(self, wrap):
        """Partitioning never alters adjacency: every neighbor of every
        cell is owned by exactly one shard, and the cut edges recorded in
        ``plan.boundary`` are exactly the cross-owner adjacencies."""
        topology = HexTopology(6, 4, wrap=wrap)
        plan = partition_hex(topology, 3)
        cross = set()
        for cell in range(topology.num_cells):
            for neighbor in topology.neighbors(cell):
                owner, other = plan.owner[cell], plan.owner[neighbor]
                assert 0 <= other < plan.shards
                if owner != other:
                    cross.add((owner, other))
        recorded = {
            (source, target)
            for source, targets in enumerate(plan.boundary)
            for target in targets
        }
        assert recorded == cross
        for source, targets in enumerate(plan.boundary):
            for target, cells in targets.items():
                expected = [
                    cell
                    for cell in plan.cells[source]
                    if any(
                        plan.owner[neighbor] == target
                        for neighbor in topology.neighbors(cell)
                    )
                ]
                assert list(cells) == expected

    def test_wrap_routes_first_and_last_band_together(self):
        """On a torus, row 0 borders the last row, so shard 0 and the
        last shard must list each other as boundary peers."""
        topology = HexTopology(8, 4, wrap=True)
        plan = partition_hex(topology, 4)
        assert (plan.shards - 1) in plan.boundary[0]
        assert 0 in plan.boundary[plan.shards - 1]
        # Unwrapped, the same cut has no 0 <-> last adjacency.
        open_plan = partition_hex(HexTopology(8, 4, wrap=False), 4)
        assert (open_plan.shards - 1) not in open_plan.boundary[0]

    def test_boundary_cells_are_one_row_deep(self):
        """Hex adjacency spans at most one row, so every cross-shard
        edge starts in the first or last row of its band."""
        topology = HexTopology(8, 4, wrap=True)
        plan = partition_hex(topology, 4)
        bands = topology.row_bands(4)
        for cell in range(topology.num_cells):
            owner = plan.owner[cell]
            row = topology.coordinates(cell)[0]
            start, end = bands[owner]
            for neighbor in topology.neighbors(cell):
                if plan.owner[neighbor] != owner:
                    assert row in (start, end - 1)
                    break


class TestLoadBalancedPlans:
    def _weights(self, topology, hot_rows, gain=9.0):
        weights = [1.0] * topology.num_cells
        for row in hot_rows:
            for col in range(topology.cols):
                weights[topology.cell_id(row, col)] = gain
        return weights

    @pytest.mark.parametrize("kind", ["load", "tiles"])
    @pytest.mark.parametrize("shards", [1, 2, 3, 4])
    def test_every_cell_owned_exactly_once(self, kind, shards):
        topology = HexTopology(8, 6, wrap=True)
        weights = self._weights(topology, hot_rows=(0, 1))
        plan = partition_hex(topology, shards, kind=kind, weights=weights)
        seen = []
        for shard in range(plan.shards):
            seen.extend(plan.cells[shard])
        assert sorted(seen) == list(range(topology.num_cells))
        for cell in range(topology.num_cells):
            assert cell in plan.cells[plan.owner[cell]]
        assert plan.kind == kind
        assert len(plan.loads) == shards

    @pytest.mark.parametrize("kind", ["load", "tiles"])
    @pytest.mark.parametrize("wrap", [False, True])
    def test_boundary_matches_cross_owner_adjacency(self, kind, wrap):
        topology = HexTopology(8, 6, wrap=wrap)
        weights = self._weights(topology, hot_rows=(2, 3))
        plan = partition_hex(topology, 4, kind=kind, weights=weights)
        cross = set()
        for cell in range(topology.num_cells):
            for neighbor in topology.neighbors(cell):
                owner, other = plan.owner[cell], plan.owner[neighbor]
                if owner != other:
                    cross.add((owner, other))
        recorded = {
            (source, target)
            for source, targets in enumerate(plan.boundary)
            for target in targets
        }
        assert recorded == cross
        for source, targets in enumerate(plan.boundary):
            for target, cells in targets.items():
                expected = [
                    cell
                    for cell in plan.cells[source]
                    if any(
                        plan.owner[neighbor] == target
                        for neighbor in topology.neighbors(cell)
                    )
                ]
                assert list(cells) == expected

    def test_load_plan_shrinks_hot_bands(self):
        """Rows carrying 9x the weight get fewer rows per shard than a
        plain row count would give them."""
        topology = HexTopology(8, 6, wrap=True)
        weights = self._weights(topology, hot_rows=(0, 1), gain=9.0)
        plan = partition_hex(topology, 4, kind="load", weights=weights)
        rows_of_shard_0 = {
            topology.coordinates(cell)[0] for cell in plan.cells[0]
        }
        assert len(rows_of_shard_0) < 2  # rows plan would give exactly 2
        spread = max(plan.loads) / (sum(plan.loads) / len(plan.loads))
        uniform = partition_hex(topology, 4, kind="rows", weights=weights)
        uniform_loads = [
            sum(weights[cell] for cell in uniform.cells[shard])
            for shard in range(4)
        ]
        uniform_spread = max(uniform_loads) / (
            sum(uniform_loads) / len(uniform_loads)
        )
        assert spread < uniform_spread

    def test_load_plan_uniform_weights_gives_near_equal_bands(self):
        topology = HexTopology(8, 5, wrap=True)
        load_plan = partition_hex(topology, 3, kind="load")
        sizes = [len(cells) for cells in load_plan.cells]
        assert max(sizes) - min(sizes) <= topology.cols
        assert sum(sizes) == topology.num_cells

    def test_tiles_factor_near_square(self):
        topology = HexTopology(8, 8, wrap=True)
        plan = partition_hex(topology, 4, kind="tiles")
        # 4 shards on 8x8 -> 2x2 tiles: each shard owns a 4x4 block.
        for shard in range(4):
            rows = {topology.coordinates(c)[0] for c in plan.cells[shard]}
            cols = {topology.coordinates(c)[1] for c in plan.cells[shard]}
            assert len(rows) == 4 and len(cols) == 4

    def test_tiles_rejects_impossible_factorisation(self):
        topology = HexTopology(4, 4, wrap=True)
        with pytest.raises(ValueError, match="tile"):
            partition_hex(topology, 7, kind="tiles")

    def test_rejects_unknown_kind_and_bad_weights(self):
        topology = HexTopology(4, 4, wrap=True)
        with pytest.raises(ValueError, match="kind"):
            partition_hex(topology, 2, kind="spiral")
        with pytest.raises(ValueError, match="weight"):
            partition_hex(
                topology, 2, kind="load", weights=[1.0] * 3
            )

    def test_empty_shard_is_rejected(self):
        topology = HexTopology(6, 4, wrap=True)
        with pytest.raises(ValueError):
            partition_hex(topology, 7, kind="load")


class TestWeightedBands:
    def test_all_zero_weights_fall_back_to_uniform(self):
        from repro.simulation.spatial import _weighted_bands

        ranges = _weighted_bands([0.0] * 8, 4)
        assert ranges == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_every_band_is_nonempty_and_contiguous(self):
        from repro.simulation.spatial import _weighted_bands

        weights = [100.0, 1.0, 1.0, 1.0, 1.0]
        ranges = _weighted_bands(weights, 4)
        assert ranges[0][0] == 0 and ranges[-1][1] == len(weights)
        for (_, end), (start, _) in zip(ranges, ranges[1:]):
            assert end == start
        assert all(end > start for start, end in ranges)

    def test_heavy_slots_get_narrow_bands(self):
        from repro.simulation.spatial import _weighted_bands

        weights = [8.0, 8.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]
        ranges = _weighted_bands(weights, 4)
        sizes = [end - start for start, end in ranges]
        assert sizes[0] == 1  # one 8.0 slot is already a fair share

    def test_rejects_more_bands_than_slots(self):
        from repro.simulation.spatial import _weighted_bands

        with pytest.raises(ValueError):
            _weighted_bands([1.0, 1.0], 3)
