"""Partitioning invariants of HexTopology.row_bands / partition_hex."""

import pytest

from repro.cellular.topology import HexTopology
from repro.simulation.spatial import partition_hex


class TestRowBands:
    def test_sizes_differ_by_at_most_one(self):
        topology = HexTopology(10, 4, wrap=True)
        for bands in range(1, 11):
            ranges = topology.row_bands(bands)
            sizes = [end - start for start, end in ranges]
            assert len(ranges) == bands
            assert max(sizes) - min(sizes) <= 1
            assert sum(sizes) == topology.rows

    def test_contiguous_and_ordered(self):
        topology = HexTopology(8, 3, wrap=True)
        ranges = topology.row_bands(3)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == topology.rows
        for (_, end), (start, _) in zip(ranges, ranges[1:]):
            assert end == start

    def test_extra_rows_go_to_first_bands(self):
        ranges = HexTopology(10, 2, wrap=True).row_bands(4)
        assert [end - start for start, end in ranges] == [3, 3, 2, 2]

    def test_rejects_bad_band_counts(self):
        topology = HexTopology(4, 4, wrap=True)
        with pytest.raises(ValueError):
            topology.row_bands(0)
        with pytest.raises(ValueError):
            topology.row_bands(5)


class TestPartitionHex:
    @pytest.mark.parametrize("shards", [1, 2, 3, 4])
    def test_every_cell_owned_exactly_once(self, shards):
        topology = HexTopology(8, 5, wrap=True)
        plan = partition_hex(topology, shards)
        seen = []
        for shard in range(plan.shards):
            seen.extend(plan.cells[shard])
        assert sorted(seen) == list(range(topology.num_cells))
        for cell in range(topology.num_cells):
            owner = plan.owner[cell]
            assert cell in plan.cells[owner]

    def test_bands_are_contiguous_rows(self):
        topology = HexTopology(8, 5, wrap=True)
        plan = partition_hex(topology, 3)
        for shard in range(plan.shards):
            rows = sorted({topology.coordinates(c)[0] for c in plan.cells[shard]})
            assert rows == list(range(rows[0], rows[-1] + 1))

    @pytest.mark.parametrize("wrap", [False, True])
    def test_neighbor_sets_preserved_across_cuts(self, wrap):
        """Partitioning never alters adjacency: every neighbor of every
        cell is owned by exactly one shard, and the cut edges recorded in
        ``plan.boundary`` are exactly the cross-owner adjacencies."""
        topology = HexTopology(6, 4, wrap=wrap)
        plan = partition_hex(topology, 3)
        cross = set()
        for cell in range(topology.num_cells):
            for neighbor in topology.neighbors(cell):
                owner, other = plan.owner[cell], plan.owner[neighbor]
                assert 0 <= other < plan.shards
                if owner != other:
                    cross.add((owner, other))
        recorded = {
            (source, target)
            for source, targets in enumerate(plan.boundary)
            for target in targets
        }
        assert recorded == cross
        for source, targets in enumerate(plan.boundary):
            for target, cells in targets.items():
                expected = [
                    cell
                    for cell in plan.cells[source]
                    if any(
                        plan.owner[neighbor] == target
                        for neighbor in topology.neighbors(cell)
                    )
                ]
                assert list(cells) == expected

    def test_wrap_routes_first_and_last_band_together(self):
        """On a torus, row 0 borders the last row, so shard 0 and the
        last shard must list each other as boundary peers."""
        topology = HexTopology(8, 4, wrap=True)
        plan = partition_hex(topology, 4)
        assert (plan.shards - 1) in plan.boundary[0]
        assert 0 in plan.boundary[plan.shards - 1]
        # Unwrapped, the same cut has no 0 <-> last adjacency.
        open_plan = partition_hex(HexTopology(8, 4, wrap=False), 4)
        assert (open_plan.shards - 1) not in open_plan.boundary[0]

    def test_boundary_cells_are_one_row_deep(self):
        """Hex adjacency spans at most one row, so every cross-shard
        edge starts in the first or last row of its band."""
        topology = HexTopology(8, 4, wrap=True)
        plan = partition_hex(topology, 4)
        bands = topology.row_bands(4)
        for cell in range(topology.num_cells):
            owner = plan.owner[cell]
            row = topology.coordinates(cell)[0]
            start, end = bands[owner]
            for neighbor in topology.neighbors(cell):
                if plan.owner[neighbor] != owner:
                    assert row in (start, end - 1)
                    break
