"""Unit tests for backhaul signaling accounting."""

import pytest

from repro.cellular.signaling import (
    Interconnect,
    SignalingAccountant,
)


def test_full_mesh_one_hop_per_message():
    accountant = SignalingAccountant(Interconnect.FULL_MESH)
    accountant.account(10)
    report = accountant.report()
    assert report.logical_messages == 10
    assert report.transport_hops == 10
    assert report.msc_transits == 0
    assert report.hops_per_message() == 1.0


def test_star_two_hops_via_msc():
    accountant = SignalingAccountant(Interconnect.STAR)
    accountant.account(10)
    report = accountant.report()
    assert report.transport_hops == 20
    assert report.msc_transits == 10
    assert report.hops_per_message() == 2.0


def test_accumulates_over_calls():
    accountant = SignalingAccountant(Interconnect.STAR)
    accountant.account(3)
    accountant.account(4)
    assert accountant.report().logical_messages == 7
    assert accountant.report().transport_hops == 14


def test_negative_count_rejected():
    with pytest.raises(ValueError):
        SignalingAccountant().account(-1)


def test_zero_messages_zero_ratio():
    assert SignalingAccountant().report().hops_per_message() == 0.0


def test_compare_covers_both_layouts():
    reports = SignalingAccountant.compare(100)
    assert set(reports) == {"star", "full_mesh"}
    assert reports["star"].transport_hops == 200
    assert reports["full_mesh"].transport_hops == 100
