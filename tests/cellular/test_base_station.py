"""Unit tests for the base-station control plane (Eqs. 5-6 protocol)."""

import pytest

from repro.cellular.network import CellularNetwork
from repro.cellular.topology import LinearTopology
from repro.estimation.cache import CacheConfig
from repro.traffic.classes import VIDEO, VOICE
from repro.traffic.connection import Connection


def make_network(num_cells=4):
    return CellularNetwork(
        LinearTopology(num_cells),
        capacity=100.0,
        cache_config=CacheConfig(interval=None),
    )


def attach(network, cell_id, traffic_class, entry_time, prev=None):
    connection = Connection(
        traffic_class,
        start_time=entry_time,
        cell_id=cell_id,
        prev_cell=prev,
        cell_entry_time=entry_time,
    )
    network.cell(cell_id).attach(connection)
    return connection


def test_neighbor_stations():
    network = make_network()
    station = network.station(0)
    assert [s.cell_id for s in station.neighbor_stations()] == [3, 1]


def test_outgoing_reservation_matches_eq5():
    network = make_network()
    station = network.station(1)
    # All observed mobiles from scratch (prev=None) leave toward cell 0
    # after exactly 10 s.
    for index in range(10):
        station.estimator.record_departure(float(index), None, 0, 10.0)
    attach(network, 1, VIDEO, entry_time=95.0)  # extant sojourn 5 s
    # t_est = 10 covers the sojourn-10 mass fully: p_h = 1.
    assert station.outgoing_reservation(100.0, 0, 10.0) == pytest.approx(4.0)
    # t_est = 4 -> window (5, 9]: no mass, p_h = 0.
    assert station.outgoing_reservation(100.0, 0, 4.0) == 0.0


def test_update_target_reservation_aggregates_neighbors():
    network = make_network()
    for neighbor in (1, 3):
        station = network.station(neighbor)
        for index in range(10):
            station.estimator.record_departure(float(index), None, 0, 10.0)
        attach(network, neighbor, VOICE, entry_time=95.0)
    target = network.station(0)
    target.window.t_est = 10.0
    reservation = target.update_target_reservation(100.0)
    assert reservation == pytest.approx(2.0)  # 1 BU from each side
    assert network.cell(0).reserved_target == pytest.approx(2.0)
    assert target.reservation_calculations == 1


def test_update_counts_messages():
    network = make_network()
    station = network.station(0)
    before = network.total_messages()
    station.update_target_reservation(0.0)
    # One announcement + one reply per neighbour.
    assert network.total_messages() - before == 4


def test_neighborhood_max_sojourn():
    network = make_network()
    network.station(1).estimator.record_departure(0.0, None, 0, 33.0)
    network.station(3).estimator.record_departure(0.0, None, 0, 55.0)
    network.station(2).estimator.record_departure(0.0, None, 1, 99.0)
    # Cell 0's neighbours are 1 and 3; cell 2's history is irrelevant.
    assert network.station(0).neighborhood_max_sojourn(10.0) == 55.0


def test_on_handoff_arrival_feeds_controller():
    network = make_network()
    station = network.station(0)
    network.station(1).estimator.record_departure(0.0, None, 0, 40.0)
    for _ in range(2):
        station.on_handoff_arrival(dropped=True, now=5.0)
    assert station.window.total_drops == 2
    assert station.window.t_est == 2.0  # bounded by max sojourn 40


def test_record_departure_computes_sojourn():
    network = make_network()
    station = network.station(0)
    station.record_departure(50.0, prev=3, next_cell=1, entry_time=20.0)
    snapshot = station.estimator.function_for(50.0, 3)
    assert snapshot.max_sojourn() == 30.0


def test_t_est_property_reflects_controller():
    network = make_network()
    station = network.station(0)
    station.window.t_est = 17.0
    assert station.t_est == 17.0
