"""Unit tests for linear and hexagonal topologies."""

import pytest

from repro.cellular.topology import HexTopology, LinearTopology


class TestLinearRing:
    def test_neighbors_wrap(self):
        topology = LinearTopology(10)
        assert topology.neighbors(0) == (9, 1)
        assert topology.neighbors(9) == (8, 0)
        assert topology.neighbors(5) == (4, 6)

    def test_cell_of_position(self):
        topology = LinearTopology(10, cell_diameter_km=1.0)
        assert topology.cell_of_position(0.0) == 0
        assert topology.cell_of_position(0.999) == 0
        assert topology.cell_of_position(1.0) == 1
        assert topology.cell_of_position(9.5) == 9

    def test_position_wraps_on_ring(self):
        topology = LinearTopology(10)
        assert topology.cell_of_position(10.5) == 0
        assert topology.wrap_position(10.5) == 0.5
        assert topology.wrap_position(-0.5) == 9.5

    def test_never_off_road(self):
        topology = LinearTopology(10)
        assert not topology.off_road(-5.0)
        assert not topology.off_road(100.0)

    def test_cell_span(self):
        topology = LinearTopology(10, cell_diameter_km=2.0)
        assert topology.cell_span_km(3) == (6.0, 8.0)
        assert topology.road_length_km == 20.0


class TestLinearLine:
    def test_border_neighbors(self):
        topology = LinearTopology(10, ring=False)
        assert topology.neighbors(0) == (1,)
        assert topology.neighbors(9) == (8,)
        assert topology.neighbors(4) == (3, 5)

    def test_off_road_detection(self):
        topology = LinearTopology(10, ring=False)
        assert topology.off_road(-0.1)
        assert topology.off_road(10.0)
        assert not topology.off_road(5.0)

    def test_wrap_is_identity(self):
        topology = LinearTopology(10, ring=False)
        assert topology.wrap_position(3.7) == 3.7


class TestLinearValidation:
    def test_too_few_cells(self):
        with pytest.raises(ValueError):
            LinearTopology(1)

    def test_bad_diameter(self):
        with pytest.raises(ValueError):
            LinearTopology(10, cell_diameter_km=0.0)

    def test_cell_id_out_of_range(self):
        topology = LinearTopology(5)
        with pytest.raises(ValueError):
            topology.neighbors(5)
        with pytest.raises(ValueError):
            topology.cell_span_km(-1)

    def test_position_outside_open_road(self):
        topology = LinearTopology(5, ring=False)
        with pytest.raises(ValueError):
            topology.cell_of_position(7.0)


class TestHex:
    def test_interior_cell_has_six_neighbors(self):
        topology = HexTopology(5, 5)
        assert len(topology.neighbors(topology.cell_id(2, 2))) == 6

    def test_corner_has_fewer_neighbors(self):
        topology = HexTopology(5, 5)
        assert len(topology.neighbors(topology.cell_id(0, 0))) < 6

    def test_wrapped_grid_all_six(self):
        topology = HexTopology(4, 4, wrap=True)
        for cell_id in range(topology.num_cells):
            assert len(topology.neighbors(cell_id)) == 6

    def test_adjacency_symmetric(self):
        for wrap in (False, True):
            topology = HexTopology(4, 5, wrap=wrap)
            for cell_id in range(topology.num_cells):
                for neighbor in topology.neighbors(cell_id):
                    assert cell_id in topology.neighbors(neighbor)

    def test_no_self_loops(self):
        topology = HexTopology(4, 3, wrap=True)
        for cell_id in range(topology.num_cells):
            assert cell_id not in topology.neighbors(cell_id)

    def test_coordinates_roundtrip(self):
        topology = HexTopology(3, 4)
        for cell_id in range(topology.num_cells):
            row, col = topology.coordinates(cell_id)
            assert topology.cell_id(row, col) == cell_id

    def test_bad_grid(self):
        with pytest.raises(ValueError):
            HexTopology(0, 5)

    def test_out_of_range(self):
        topology = HexTopology(3, 3)
        with pytest.raises(ValueError):
            topology.neighbors(9)
        with pytest.raises(ValueError):
            topology.cell_id(3, 0)
        with pytest.raises(ValueError):
            topology.coordinates(-1)
