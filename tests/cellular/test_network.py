"""Unit tests for the network container."""

from repro.cellular.network import CellularNetwork
from repro.cellular.topology import HexTopology, LinearTopology
from repro.estimation.estimator import KnownPathEstimator
from repro.traffic.classes import VIDEO
from repro.traffic.connection import Connection


def test_builds_one_cell_and_station_per_topology_cell():
    network = CellularNetwork(LinearTopology(10))
    assert network.num_cells == 10
    assert len(network.cells) == 10
    assert len(network.stations) == 10
    for cell_id in range(10):
        assert network.cell(cell_id).cell_id == cell_id
        assert network.station(cell_id).cell is network.cell(cell_id)


def test_uniform_capacity():
    network = CellularNetwork(LinearTopology(4), capacity=42.0)
    assert all(cell.capacity == 42.0 for cell in network)


def test_heterogeneous_capacity_callable():
    network = CellularNetwork(
        LinearTopology(4), capacity=lambda cell_id: 50.0 + cell_id
    )
    assert [cell.capacity for cell in network.cells] == [50, 51, 52, 53]


def test_custom_estimator_factory():
    network = CellularNetwork(
        LinearTopology(3),
        estimator_factory=lambda cell_id: KnownPathEstimator(),
    )
    assert all(
        isinstance(station.estimator, KnownPathEstimator)
        for station in network.stations
    )


def test_neighbors_delegate_to_topology():
    network = CellularNetwork(LinearTopology(5, ring=False))
    assert network.neighbors(0) == (1,)
    assert network.neighbors(2) == (1, 3)


def test_works_with_hex_topology():
    network = CellularNetwork(HexTopology(4, 3, wrap=True))
    assert network.num_cells == 12
    assert len(network.neighbors(4)) == 6


def test_total_used_bandwidth():
    network = CellularNetwork(LinearTopology(3))
    network.cell(0).attach(Connection(VIDEO, 0.0, 0))
    network.cell(2).attach(Connection(VIDEO, 0.0, 2))
    assert network.total_used_bandwidth() == 8.0


def test_total_counters_start_zero():
    network = CellularNetwork(LinearTopology(3))
    assert network.total_messages() == 0
    assert network.total_reservation_calculations() == 0
